//! Exposition: Prometheus text format and JSON snapshots.
//!
//! Both encoders read the registry under its registration lock, which is
//! fine: exposition happens once per scrape/snapshot, never on the hot
//! path. Instrument cells are read with relaxed atomics, so a scrape
//! concurrent with recording sees a consistent-enough point-in-time view
//! (each cell individually coherent, counters monotone across scrapes).

use crate::registry::{Family, Instrument, MetricsRegistry, Series, Unit};
use crate::SNAPSHOT_FORMAT_VERSION;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

impl MetricsRegistry {
    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): one `# HELP`/`# TYPE` pair per family, counters
    /// as single samples, histograms as cumulative `_bucket{le=…}`
    /// series plus `_sum` and `_count`.
    pub fn encode_prometheus(&self) -> String {
        let mut out = String::new();
        self.with_families(|families| {
            for family in families {
                let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
                let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
                for series in &family.series {
                    encode_prometheus_series(&mut out, family, series);
                }
            }
        });
        out
    }

    /// Renders a JSON snapshot of every family and series, stamped with
    /// [`SNAPSHOT_FORMAT_VERSION`]. Durations ([`Unit::Micros`]) are
    /// exported in seconds, matching the Prometheus encoding, so the two
    /// formats agree on values.
    pub fn encode_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"format_version\": {SNAPSHOT_FORMAT_VERSION},");
        out.push_str("  \"metrics\": [\n");
        self.with_families(|families| {
            for (fi, family) in families.iter().enumerate() {
                out.push_str("    {\n");
                let _ = writeln!(out, "      \"name\": {},", json_string(&family.name));
                let _ = writeln!(out, "      \"help\": {},", json_string(&family.help));
                let _ = writeln!(
                    out,
                    "      \"kind\": {},",
                    json_string(family.kind.as_str())
                );
                out.push_str("      \"series\": [\n");
                for (si, series) in family.series.iter().enumerate() {
                    out.push_str("        { \"labels\": {");
                    for (li, (key, value)) in series.labels.iter().enumerate() {
                        if li > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "{}: {}", json_string(key), json_string(value));
                    }
                    out.push_str("}, ");
                    encode_json_value(&mut out, family, series);
                    out.push_str(" }");
                    if si + 1 < family.series.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str("      ]\n");
                out.push_str("    }");
                if fi + 1 < families.len() {
                    out.push(',');
                }
                out.push('\n');
            }
        });
        out.push_str("  ]\n}\n");
        out
    }
}

fn encode_prometheus_series(out: &mut String, family: &Family, series: &Series) {
    match &series.instrument {
        Instrument::Counter(cell) => {
            let raw = cell.load(Ordering::Relaxed);
            out.push_str(&family.name);
            write_labels(out, &series.labels, None);
            match family.unit {
                Unit::Count => {
                    let _ = writeln!(out, " {raw}");
                }
                Unit::Micros => {
                    let _ = writeln!(out, " {}", fmt_f64(raw as f64 / 1e6));
                }
            }
        }
        Instrument::Histogram(cell) => {
            let mut cumulative = 0u64;
            for (i, bucket) in cell.buckets.iter().enumerate() {
                cumulative += bucket.load(Ordering::Relaxed);
                let le = cell
                    .bounds
                    .get(i)
                    .map_or_else(|| "+Inf".to_string(), |b| fmt_f64(*b));
                let _ = write!(out, "{}_bucket", family.name);
                write_labels(out, &series.labels, Some(&le));
                let _ = writeln!(out, " {cumulative}");
            }
            let sum = f64::from_bits(cell.sum_bits.load(Ordering::Relaxed));
            let _ = write!(out, "{}_sum", family.name);
            write_labels(out, &series.labels, None);
            let _ = writeln!(out, " {}", fmt_f64(sum));
            let _ = write!(out, "{}_count", family.name);
            write_labels(out, &series.labels, None);
            let _ = writeln!(out, " {cumulative}");
        }
    }
}

fn encode_json_value(out: &mut String, family: &Family, series: &Series) {
    match &series.instrument {
        Instrument::Counter(cell) => {
            let raw = cell.load(Ordering::Relaxed);
            match family.unit {
                Unit::Count => {
                    let _ = write!(out, "\"value\": {raw}");
                }
                Unit::Micros => {
                    let _ = write!(out, "\"value\": {}", fmt_f64_json(raw as f64 / 1e6));
                }
            }
        }
        Instrument::Histogram(cell) => {
            out.push_str("\"buckets\": [");
            let mut cumulative = 0u64;
            for (i, bucket) in cell.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                cumulative += bucket.load(Ordering::Relaxed);
                let le = cell
                    .bounds
                    .get(i)
                    .map_or_else(|| "\"+Inf\"".to_string(), |b| fmt_f64_json(*b));
                let _ = write!(out, "{{\"le\": {le}, \"count\": {cumulative}}}");
            }
            out.push(']');
            let sum = f64::from_bits(cell.sum_bits.load(Ordering::Relaxed));
            let _ = write!(out, ", \"sum\": {}", fmt_f64_json(sum));
            let _ = write!(out, ", \"count\": {cumulative}");
        }
    }
}

/// Writes a `{key="value",…}` label block; `le` (if any) is appended
/// last. Empty label sets on plain samples write nothing.
fn write_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (key, value) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{key}=\"{}\"", escape_label_value(value));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
}

/// Formats an `f64` the way Prometheus expects: `Display` already prints
/// the shortest round-trip form (`4` not `4.0`, `0.5`, `1e-9`), and the
/// special values get their spelled-out names.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// JSON has no Inf/NaN literals; encode non-finite values as strings so
/// the document stays parseable.
fn fmt_f64_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        format!("\"{}\"", fmt_f64(v))
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let registry = MetricsRegistry::new();
        let c = registry.counter("req_total", "Requests.", &[("route", "/a")]);
        c.add(5);
        let t = registry.counter_micros("busy_seconds_total", "Busy time.", &[]);
        t.add(2_500_000); // 2.5 s
        let h = registry.histogram("lat", "Latency.", &[("route", "/a")], &[1.0, 4.0]);
        h.observe(0.5);
        h.observe(2.0);
        h.observe(9.0);
        registry
    }

    #[test]
    fn prometheus_format_shape() {
        let text = sample_registry().encode_prometheus();
        assert!(text.contains("# HELP req_total Requests.\n"));
        assert!(text.contains("# TYPE req_total counter\n"));
        assert!(text.contains("req_total{route=\"/a\"} 5\n"));
        assert!(text.contains("busy_seconds_total 2.5\n"), "{text}");
        assert!(text.contains("lat_bucket{route=\"/a\",le=\"1\"} 1\n"));
        assert!(text.contains("lat_bucket{route=\"/a\",le=\"4\"} 2\n"));
        assert!(text.contains("lat_bucket{route=\"/a\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_sum{route=\"/a\"} 11.5\n"));
        assert!(text.contains("lat_count{route=\"/a\"} 3\n"));
    }

    #[test]
    fn every_sample_line_is_well_formed() {
        let text = sample_registry().encode_prometheus();
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            // name{labels} value — value must parse as f64.
            let value = line.rsplit(' ').next().expect("non-empty line");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
                "unparseable sample value in line: {line}"
            );
        }
    }

    #[test]
    fn json_snapshot_has_version_and_values() {
        let json = sample_registry().encode_json();
        assert!(json.contains(&format!("\"format_version\": {SNAPSHOT_FORMAT_VERSION}")));
        assert!(json.contains("\"name\": \"req_total\""));
        assert!(json.contains("\"value\": 5"));
        assert!(json.contains("\"value\": 2.5"));
        assert!(json.contains("{\"le\": \"+Inf\", \"count\": 3}"));
        assert!(json.contains("\"sum\": 11.5"));
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("m_total", "M.", &[("q", "a\"b\\c")]);
        c.inc();
        let text = registry.encode_prometheus();
        assert!(text.contains("m_total{q=\"a\\\"b\\\\c\"} 1"), "{text}");
    }

    #[test]
    fn empty_registry_encodes_cleanly() {
        let registry = MetricsRegistry::new();
        assert_eq!(registry.encode_prometheus(), "");
        let json = registry.encode_json();
        assert!(json.contains("\"metrics\": [\n  ]"), "{json}");
    }
}
