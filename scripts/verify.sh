#!/usr/bin/env bash
# Full verification: release build, tests, formatting, lints.
# Run from the repository root: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> store durability (round-trip + corruption)"
cargo test -q -p regcluster-store --test roundtrip --test corruption

echo "==> serve smoke (concurrent clients, graceful shutdown)"
cargo test -q -p regcluster-cli --test serve_smoke

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "verify: OK"
