//! Hot-path perf harness — per-phase and per-node timing for the
//! enumeration core, tracked across PRs in a committed baseline.
//!
//! Sweeps the Figure 7 conditions panel (the paper's worst scaling axis,
//! `#cond`, with generator/mining defaults identical to the `fig7` bench)
//! and splits every point into the two phases of a mine:
//!
//! * **model build** — `Miner::new`, one `RWave^γ` model + hot table per gene;
//! * **enumeration** — `mine_all_with` on a warmed [`MineWorkspace`], so the
//!   number reflects the steady-state, allocation-free hot path.
//!
//! Per-node nanoseconds (`enumerate_s / nodes`, nodes counted by a
//! [`MiningStats`] observer) is the headline metric: it is what the bitset
//! refactors move, and it is far less noisy than wall-clock seconds because
//! the node count is deterministic for a given input.
//!
//! Modes (see `docs/PERFORMANCE.md` for the full recipe):
//!
//! * default — full sweep, **rewrites `BENCH_hotpath.json` at the repo
//!   root** (the committed baseline) and drops a copy in the results dir;
//! * `--quick` — reduced sweep written to `results/hotpath_quick.json`
//!   only; the committed baseline is left untouched;
//! * `--check` — compare the fresh sweep against the committed baseline
//!   and exit non-zero when any point regressed past the noise threshold
//!   (`REGCLUSTER_PERF_THRESHOLD`, default 1.5×); on pass the baseline is
//!   refreshed (full mode only);
//! * `--check-baseline` — no mining at all: parse the committed baseline
//!   and fail on structural rot (missing file, wrong version, non-finite
//!   numbers). This is the only gate CI runs on shared hardware.

use regcluster_bench::{time, write_json};
use regcluster_core::{MineWorkspace, Miner, MiningParams, MiningStats, NoopObserver};
use regcluster_datagen::{generate, SyntheticConfig};
use serde::{Deserialize, Serialize};

/// Schema version of `BENCH_hotpath.json`; bump on incompatible change.
const BASELINE_FORMAT_VERSION: u32 = 1;
/// Default regression threshold for `--check`: fail when a point's
/// ns/node exceeds `threshold × baseline`.
const DEFAULT_THRESHOLD: f64 = 1.5;

/// Figure 7 mining parameters (panel defaults).
const MINING_GAMMA: f64 = 0.1;
const MINING_EPSILON: f64 = 0.01;

#[derive(Debug, Serialize, Deserialize)]
struct HotpathPoint {
    n_conds: usize,
    n_genes: usize,
    /// `Miner::new` (RWave models + SoA hot tables), seconds.
    model_build_s: f64,
    /// Warm-workspace `mine_all_with`, seconds (mean over repetitions).
    enumerate_s: f64,
    /// Enumeration-tree nodes entered (deterministic per input).
    nodes: usize,
    clusters: usize,
    /// Headline metric: `enumerate_s * 1e9 / nodes`.
    ns_per_node: f64,
    nodes_per_s: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct HotpathBaseline {
    format_version: u32,
    quick: bool,
    repetitions: usize,
    mining_gamma: f64,
    mining_epsilon: f64,
    /// Node-weighted mean ns/node over the sweep.
    mean_ns_per_node: f64,
    points: Vec<HotpathPoint>,
}

/// The committed baseline path: repo root, overridable for tests.
fn baseline_path() -> std::path::PathBuf {
    std::env::var_os("REGCLUSTER_BENCH_BASELINE")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hotpath.json")
        })
}

fn threshold() -> f64 {
    std::env::var("REGCLUSTER_PERF_THRESHOLD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_THRESHOLD)
}

fn load_baseline() -> Result<HotpathBaseline, String> {
    let path = baseline_path();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let b: HotpathBaseline =
        serde_json::from_str(&text).map_err(|e| format!("baseline does not parse: {e}"))?;
    if b.format_version != BASELINE_FORMAT_VERSION {
        return Err(format!(
            "baseline format_version {} != expected {BASELINE_FORMAT_VERSION}",
            b.format_version
        ));
    }
    if b.points.is_empty() {
        return Err("baseline has no points".into());
    }
    for p in &b.points {
        if !(p.ns_per_node.is_finite() && p.ns_per_node > 0.0) || p.nodes == 0 {
            return Err(format!("baseline point #cond={} is degenerate", p.n_conds));
        }
    }
    Ok(b)
}

/// One sweep point: build the miner (timed), warm the workspace, then
/// average `reps` timed enumeration runs with a node-counting observer.
fn run_point(n_conds: usize, reps: usize) -> HotpathPoint {
    let cfg = SyntheticConfig {
        n_conds,
        ..SyntheticConfig::default()
    };
    let data = generate(&cfg).expect("generator config is feasible");
    let min_g = ((0.01 * cfg.n_genes as f64).round() as usize).max(2);
    let params =
        MiningParams::new(min_g, 6, MINING_GAMMA, MINING_EPSILON).expect("mining params valid");
    let (miner, model_build_s) =
        time(|| Miner::new(&data.matrix, &params).expect("params validate"));
    let mut workspace = MineWorkspace::new();
    // Warm-up: grows every scratch buffer to its high-water mark so the
    // timed runs measure the allocation-free steady state.
    let warm = miner.mine_all_with(&mut workspace, &mut NoopObserver);
    let mut enumerate_s = 0.0;
    let mut stats = MiningStats::default();
    for _ in 0..reps {
        stats = MiningStats::default();
        let (_, secs) = time(|| miner.mine_all_with(&mut workspace, &mut stats));
        enumerate_s += secs;
    }
    enumerate_s /= reps as f64;
    let nodes = stats.nodes.max(1);
    HotpathPoint {
        n_conds,
        n_genes: cfg.n_genes,
        model_build_s,
        enumerate_s,
        nodes,
        clusters: warm.len(),
        ns_per_node: enumerate_s * 1e9 / nodes as f64,
        nodes_per_s: nodes as f64 / enumerate_s.max(1e-12),
    }
}

fn sweep(quick: bool) -> HotpathBaseline {
    let (axis, reps): (&[usize], usize) = if quick {
        (&[20, 30], 1)
    } else {
        (&[10, 15, 20, 25, 30, 35, 40], 3)
    };
    let mut points = Vec::new();
    println!("hot-path sweep (fig7 conditions panel, #g = 3000, MinC = 6)");
    println!(
        "{:>7} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "#cond", "model (s)", "enum (s)", "nodes", "ns/node", "clusters"
    );
    for &n_conds in axis {
        let p = run_point(n_conds, reps);
        println!(
            "{:>7} {:>12.4} {:>12.4} {:>10} {:>12.1} {:>10}",
            p.n_conds, p.model_build_s, p.enumerate_s, p.nodes, p.ns_per_node, p.clusters
        );
        points.push(p);
    }
    let total_nodes: usize = points.iter().map(|p| p.nodes).sum();
    let total_s: f64 = points.iter().map(|p| p.enumerate_s).sum();
    let mean = total_s * 1e9 / total_nodes.max(1) as f64;
    println!("node-weighted mean: {mean:.1} ns/node over {total_nodes} nodes");
    HotpathBaseline {
        format_version: BASELINE_FORMAT_VERSION,
        quick,
        repetitions: reps,
        mining_gamma: MINING_GAMMA,
        mining_epsilon: MINING_EPSILON,
        mean_ns_per_node: mean,
        points,
    }
}

/// Compares a fresh sweep against the committed baseline; returns the
/// regressed points (matched by `#cond`).
fn regressions<'a>(
    fresh: &'a HotpathBaseline,
    base: &HotpathBaseline,
    threshold: f64,
) -> Vec<(&'a HotpathPoint, f64)> {
    let mut out = Vec::new();
    for p in &fresh.points {
        if let Some(b) = base.points.iter().find(|b| b.n_conds == p.n_conds) {
            let ratio = p.ns_per_node / b.ns_per_node;
            if ratio > threshold {
                out.push((p, ratio));
            }
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let check_baseline_only = args.iter().any(|a| a == "--check-baseline");

    if check_baseline_only {
        match load_baseline() {
            Ok(b) => {
                println!(
                    "baseline OK: {} points, node-weighted mean {:.1} ns/node ({})",
                    b.points.len(),
                    b.mean_ns_per_node,
                    baseline_path().display()
                );
                return;
            }
            Err(e) => {
                eprintln!("baseline check failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let fresh = sweep(quick);

    if check {
        let threshold = threshold();
        match load_baseline() {
            Ok(base) => {
                let bad = regressions(&fresh, &base, threshold);
                if !bad.is_empty() {
                    for (p, ratio) in &bad {
                        eprintln!(
                            "REGRESSION #cond={}: {:.1} ns/node is {ratio:.2}x baseline (threshold {threshold}x)",
                            p.n_conds, p.ns_per_node
                        );
                    }
                    std::process::exit(1);
                }
                println!(
                    "no regression past {threshold}x on {} matched points",
                    fresh.points.len()
                );
            }
            Err(e) => {
                eprintln!("cannot check against baseline: {e}");
                std::process::exit(1);
            }
        }
    }

    if quick {
        write_json("hotpath_quick.json", &fresh);
    } else {
        let path = baseline_path();
        let json = serde_json::to_string_pretty(&fresh).expect("baseline serializes");
        std::fs::write(&path, json + "\n")
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
        write_json("hotpath_full.json", &fresh);
    }
}
