//! The cluster coordinator: owns the root partition, leases ranges to
//! workers, collects their shards, merges and publishes.
//!
//! # Lifecycle
//!
//! 1. Load the matrix, fingerprint it, partition `0..n_conditions` into
//!    [`partition_roots`] ranges.
//! 2. Serve the control plane ([`protocol`](crate::protocol)): grant a
//!    lease per range, renew on heartbeat, expire-and-return leases
//!    whose worker has gone silent (the expired range is simply granted
//!    to the next caller — reassignment *is* re-granting).
//! 3. Validate every uploaded shard (readable, same matrix fingerprint,
//!    same params, same generation, roots inside the leased range) and
//!    stage it durably under the work dir.
//! 4. When every range has a shard: [`merge_shards`] into
//!    `gen-<N>.rcs` and [`Generations::publish`] — the merged store is
//!    bit-identical to a single-node run (see `crates/store/src/merge.rs`
//!    for the determinism argument), so replicas hot-swap onto it
//!    exactly as they would a locally-mined generation.
//!
//! # Crash safety
//!
//! Staged shards survive a coordinator crash: on restart, every staged
//! shard that still validates marks its lease `Done`, so only the
//! missing ranges are re-mined. Failpoint sites `cluster::lease_grant`,
//! `cluster::shard_upload` and `cluster::publish` let the fault harness
//! kill each transition; `store::merge_seal` covers the merge itself.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use regcluster_core::{matrix_fingerprint, partition_roots, MiningParams};
use regcluster_matrix::io::read_matrix_file;
use regcluster_obs::MetricsRegistry;
use regcluster_store::{merge_shards, ClusterStore, Generations};

use crate::error::ClusterError;
use crate::http::{HttpServer, Request, Response};
use crate::metrics::ClusterMetrics;
use crate::protocol::{AcquireRequest, AcquireResponse, JobInfo, RenewRequest, StatusDoc};

/// Engine name stamped into every shard's provenance. Only the default
/// reg-cluster engine supports roots-subset mining today.
pub const CLUSTER_ENGINE: &str = "reg-cluster";

/// How often the main loop sweeps expired leases.
const SWEEP_EVERY: Duration = Duration::from_millis(50);

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Expression matrix file (workers load the same file and must agree
    /// on its fingerprint).
    pub matrix_path: PathBuf,
    /// Mining parameters; every worker mines under exactly these.
    pub params: MiningParams,
    /// Generations directory the merged store publishes into.
    pub store_dir: PathBuf,
    /// Scratch directory for staged shards (survives restarts).
    pub work_dir: PathBuf,
    /// Control-plane port (0 picks an ephemeral one).
    pub port: u16,
    /// Number of root leases to partition into.
    pub n_leases: usize,
    /// How long a granted lease survives without a heartbeat.
    pub lease_ttl: Duration,
    /// Keep serving `/status` and `/metrics` after publishing instead of
    /// exiting (for long-lived deployments; harnesses kill the process).
    pub linger: bool,
}

/// What a completed coordination run did.
#[derive(Debug, Clone)]
pub struct CoordinatorReport {
    /// Generation published.
    pub generation: u64,
    /// Ranges in the partition.
    pub n_leases: usize,
    /// Clusters in the merged store.
    pub n_clusters: u64,
    /// Leases that expired and were re-granted.
    pub reassignments: u64,
}

#[derive(Debug, Clone)]
enum SlotState {
    Pending,
    Leased {
        worker: String,
        epoch: u64,
        deadline: Instant,
    },
    Done,
}

#[derive(Debug)]
struct Slot {
    start: usize,
    end: usize,
    state: SlotState,
}

struct CoordState {
    slots: Mutex<Vec<Slot>>,
    next_epoch: AtomicU64,
    phase: Mutex<&'static str>,
    job_json: String,
    params: MiningParams,
    matrix_fp: u64,
    generation: u64,
    work_dir: PathBuf,
    lease_ttl: Duration,
    metrics: ClusterMetrics,
    registry: MetricsRegistry,
}

impl CoordState {
    fn shard_path(&self, lease: usize) -> PathBuf {
        self.work_dir.join(format!("shard-{lease}.rcs"))
    }
}

/// Checks a staged or uploaded shard against the run's identity and the
/// lease's root range. `Ok` means the shard can participate in the merge.
fn validate_shard(
    store: &ClusterStore,
    params: &MiningParams,
    matrix_fp: u64,
    generation: u64,
    start: usize,
    end: usize,
) -> Result<(), String> {
    if store.engine() != Some(CLUSTER_ENGINE) {
        return Err(format!(
            "engine {:?} is not {CLUSTER_ENGINE}",
            store.engine()
        ));
    }
    if store.matrix_fingerprint() != Some(matrix_fp) {
        return Err("matrix fingerprint mismatch".into());
    }
    if store.generation() != generation {
        return Err(format!(
            "shard generation {} != run generation {generation}",
            store.generation()
        ));
    }
    if store.params() != params {
        return Err("params mismatch".into());
    }
    for id in 0..store.n_clusters() {
        let root = store.cluster_root(id).map_err(|e| e.to_string())? as usize;
        if root < start || root >= end {
            return Err(format!(
                "cluster rooted at {root} outside lease [{start}, {end})"
            ));
        }
    }
    Ok(())
}

/// Runs a full coordination round: serve leases, collect shards, merge,
/// publish. Returns after publishing unless `linger` is set (then it
/// serves `/status` + `/metrics` until the process is killed).
///
/// # Errors
///
/// [`ClusterError`] for an unreadable matrix, invalid params, store
/// failures during merge/publish, or a port that cannot be bound.
pub fn run_coordinator(cfg: &CoordinatorConfig) -> Result<CoordinatorReport, ClusterError> {
    cfg.params.validate()?;
    let matrix = read_matrix_file(&cfg.matrix_path)?;
    let n_roots = matrix.n_conditions();
    let matrix_fp = matrix_fingerprint(&matrix);
    drop(matrix);

    let gens = Generations::open(&cfg.store_dir)?;
    let generation = gens.next()?;
    std::fs::create_dir_all(&cfg.work_dir)?;

    let ranges = partition_roots(n_roots, cfg.n_leases);
    if ranges.is_empty() {
        return Err(ClusterError::Protocol(
            "matrix has no conditions to partition".into(),
        ));
    }

    let registry = MetricsRegistry::new();
    let metrics = ClusterMetrics::register(&registry);
    regcluster_failpoint::register_metrics(&registry);

    let job = JobInfo {
        params_json: serde_json::to_string(&cfg.params)?,
        engine: CLUSTER_ENGINE.to_string(),
        generation,
        matrix_fingerprint: matrix_fp,
        n_roots: n_roots as u64,
    };

    let state = Arc::new(CoordState {
        slots: Mutex::new(Vec::new()),
        next_epoch: AtomicU64::new(1),
        phase: Mutex::new("mining"),
        job_json: serde_json::to_string(&job)?,
        params: cfg.params.clone(),
        matrix_fp,
        generation,
        work_dir: cfg.work_dir.clone(),
        lease_ttl: cfg.lease_ttl,
        metrics,
        registry,
    });

    // Recover staged shards from a previous incarnation: any still-valid
    // shard closes its lease before the first grant goes out.
    {
        let mut slots = state.slots.lock().unwrap();
        for (i, &(start, end)) in ranges.iter().enumerate() {
            let path = state.shard_path(i);
            let recovered = match ClusterStore::open(&path) {
                Ok(store) => {
                    validate_shard(&store, &state.params, matrix_fp, generation, start, end).is_ok()
                }
                Err(_) => false,
            };
            if !recovered && path.exists() {
                let _ = std::fs::remove_file(&path);
            }
            slots.push(Slot {
                start,
                end,
                state: if recovered {
                    SlotState::Done
                } else {
                    SlotState::Pending
                },
            });
        }
    }

    let handler_state = Arc::clone(&state);
    let server = HttpServer::start(cfg.port, move |req| handle(&handler_state, req))?;
    eprintln!(
        "coordinator: serving {} leases on 127.0.0.1:{} (generation {generation})",
        ranges.len(),
        server.port()
    );

    // Main loop: sweep silent workers' leases back to the pool until
    // every range has a validated shard.
    loop {
        std::thread::sleep(SWEEP_EVERY);
        let mut slots = state.slots.lock().unwrap();
        let now = Instant::now();
        for slot in slots.iter_mut() {
            if let SlotState::Leased {
                deadline, worker, ..
            } = &slot.state
            {
                if *deadline < now {
                    eprintln!(
                        "coordinator: lease on roots [{}, {}) expired (worker {worker}); reassigning",
                        slot.start, slot.end
                    );
                    state.metrics.leases_expired.inc();
                    slot.state = SlotState::Pending;
                }
            }
        }
        if slots.iter().all(|s| matches!(s.state, SlotState::Done)) {
            break;
        }
    }

    *state.phase.lock().unwrap() = "merging";
    let shard_paths: Vec<PathBuf> = (0..ranges.len()).map(|i| state.shard_path(i)).collect();
    let summary = merge_shards(&shard_paths, gens.path_for(generation))?;
    regcluster_failpoint::io("cluster::publish").map_err(ClusterError::Io)?;
    gens.publish(generation)?;
    state.metrics.merges.inc();
    *state.phase.lock().unwrap() = "published";
    eprintln!(
        "coordinator: published generation {generation} ({} clusters from {} shards)",
        summary.n_clusters,
        ranges.len()
    );

    let report = CoordinatorReport {
        generation,
        n_leases: ranges.len(),
        n_clusters: summary.n_clusters,
        reassignments: state.metrics.leases_expired.get(),
    };
    if cfg.linger {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    server.shutdown();
    Ok(report)
}

fn handle(state: &CoordState, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/job") => Response::json(200, state.job_json.clone()),
        ("GET", "/status") => status(state),
        ("GET", "/metrics") => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: state.registry.encode_prometheus().into_bytes(),
        },
        ("POST", "/lease/acquire") => acquire(state, &req.body),
        ("POST", "/lease/renew") => renew(state, &req.body),
        ("POST", path) if path.starts_with("/shard/") => upload(state, path, &req.body),
        _ => Response::text(404, "not found"),
    }
}

fn status(state: &CoordState) -> Response {
    let slots = state.slots.lock().unwrap();
    let doc = StatusDoc {
        state: state.phase.lock().unwrap().to_string(),
        generation: state.generation,
        leases_total: slots.len() as u64,
        leases_done: slots
            .iter()
            .filter(|s| matches!(s.state, SlotState::Done))
            .count() as u64,
    };
    match serde_json::to_string(&doc) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::text(500, e.to_string()),
    }
}

fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, Response> {
    std::str::from_utf8(body)
        .ok()
        .and_then(|s| serde_json::from_str(s).ok())
        .ok_or_else(|| Response::text(400, "malformed request body"))
}

fn acquire(state: &CoordState, body: &[u8]) -> Response {
    let req: AcquireRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    if regcluster_failpoint::io("cluster::lease_grant").is_err() {
        return Response::text(500, "lease grant fault injected");
    }
    let mut slots = state.slots.lock().unwrap();
    let all_done = slots.iter().all(|s| matches!(s.state, SlotState::Done));
    let grant = slots
        .iter_mut()
        .enumerate()
        .find_map(|(i, slot)| matches!(slot.state, SlotState::Pending).then_some((i, slot)));
    let response = match grant {
        Some((lease, slot)) => {
            let epoch = state.next_epoch.fetch_add(1, Ordering::SeqCst);
            slot.state = SlotState::Leased {
                worker: req.worker.clone(),
                epoch,
                deadline: Instant::now() + state.lease_ttl,
            };
            state.metrics.leases_granted.inc();
            AcquireResponse {
                kind: "grant".to_string(),
                lease: lease as u64,
                start: slot.start as u64,
                end: slot.end as u64,
                epoch,
                ttl_ms: state.lease_ttl.as_millis() as u64,
            }
        }
        None if all_done => AcquireResponse::signal("done"),
        None => AcquireResponse::signal("wait"),
    };
    match serde_json::to_string(&response) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::text(500, e.to_string()),
    }
}

fn renew(state: &CoordState, body: &[u8]) -> Response {
    let req: RenewRequest = match parse_body(body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let mut slots = state.slots.lock().unwrap();
    let Some(slot) = slots.get_mut(req.lease as usize) else {
        return Response::text(409, "unknown lease");
    };
    match &mut slot.state {
        SlotState::Leased {
            worker,
            epoch,
            deadline,
        } if *epoch == req.epoch && *worker == req.worker => {
            *deadline = Instant::now() + state.lease_ttl;
            state.metrics.lease_renewals.inc();
            Response::json(200, "{\"kind\":\"ok\"}".to_string())
        }
        _ => Response::text(409, "lease lost"),
    }
}

fn upload(state: &CoordState, path: &str, body: &[u8]) -> Response {
    // Path shape: /shard/<lease>/<epoch>
    let mut parts = path.trim_start_matches("/shard/").split('/');
    let (Some(Ok(lease)), Some(Ok(epoch)), None) = (
        parts.next().map(str::parse::<usize>),
        parts.next().map(str::parse::<u64>),
        parts.next(),
    ) else {
        return Response::text(400, "shard path must be /shard/<lease>/<epoch>");
    };
    // The torn-upload site: fires before anything is staged, so an
    // injected fault (or a crash here) leaves no partial shard behind.
    if regcluster_failpoint::io("cluster::shard_upload").is_err() {
        state.metrics.shards_rejected.inc();
        return Response::text(500, "shard upload fault injected");
    }
    let store = match ClusterStore::from_bytes(body.to_vec()) {
        Ok(s) => s,
        Err(e) => {
            state.metrics.shards_rejected.inc();
            return Response::text(400, format!("unreadable shard: {e}"));
        }
    };

    let mut slots = state.slots.lock().unwrap();
    let Some(slot) = slots.get_mut(lease) else {
        state.metrics.shards_rejected.inc();
        return Response::text(409, "unknown lease");
    };
    if let Err(why) = validate_shard(
        &store,
        &state.params,
        state.matrix_fp,
        state.generation,
        slot.start,
        slot.end,
    ) {
        state.metrics.shards_rejected.inc();
        return Response::text(400, format!("shard failed validation: {why}"));
    }
    match &slot.state {
        // Idempotent: the shard is already in (e.g. the worker's earlier
        // 200 was lost in flight and it retried).
        SlotState::Done => Response::text(200, "already staged"),
        SlotState::Leased { epoch: current, .. } if *current == epoch => {
            if let Err(e) = stage_shard(&state.shard_path(lease), body) {
                state.metrics.shards_rejected.inc();
                return Response::text(500, format!("staging failed: {e}"));
            }
            slot.state = SlotState::Done;
            state.metrics.shards_uploaded.inc();
            Response::text(200, "staged")
        }
        _ => {
            state.metrics.shards_rejected.inc();
            Response::text(409, "lease lost")
        }
    }
}

/// Stages shard bytes durably: tmp + fsync + rename + dir fsync, so a
/// coordinator crash leaves either a complete staged shard or none.
fn stage_shard(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("rcs.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut f, bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}
