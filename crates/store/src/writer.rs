//! Streaming store writer: a [`ClusterSink`] that packs every fresh cluster
//! straight to disk while mining runs, then seals the file with indexes,
//! dictionaries and checksums.
//!
//! During mining only the record bytes and one `u64` offset per cluster are
//! retained (plus the dictionaries handed to [`StoreWriter::create`]), so
//! memory stays bounded by the dictionaries and the per-cluster bookkeeping,
//! not by the cluster payloads. [`StoreWriter::finish`] re-reads the record
//! section once (sequential I/O), computes the **canonical permutation**
//! (sort by chain, then p-members, then n-members — the same order as
//! [`finalize_clusters`](regcluster_core::finalize_clusters)), and writes
//! the offsets table in that order. Cluster ids in a sealed store are
//! therefore canonical-order ranks: a store written at 8 threads is
//! query-identical to one written sequentially.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use regcluster_core::{ClusterSink, MiningParams, RegCluster};
use serde::{Serialize, Value};

use crate::error::StoreError;
use crate::format::{
    put_u32, put_u64, ByteReader, Fnv64, Section, SectionId, FORMAT_VERSION, HEADER_LEN, MAGIC,
};

/// Optional provenance recorded alongside the mining parameters in a
/// store's META section (see
/// [`StoreWriter::create_with_provenance`]). Every field defaults to
/// "not recorded"; absent fields cost no bytes and read back as `None`
/// (generation: as 0).
#[derive(Debug, Clone, Default)]
pub struct StoreProvenance {
    /// Name of the producing engine (e.g. `"reg-cluster"`).
    pub engine: Option<String>,
    /// The engine's native parameters as a JSON string.
    pub engine_params: Option<String>,
    /// Generation number within a [`Generations`](crate::Generations)
    /// lineage.
    pub generation: u64,
    /// Fingerprint of the mined matrix
    /// ([`matrix_fingerprint`](regcluster_core::matrix_fingerprint)).
    pub matrix_fingerprint: Option<u64>,
    /// Per-root enumeration fingerprints
    /// ([`root_fingerprints`](regcluster_core::root_fingerprints)) — the
    /// input of a later delta mine's dirty/unchanged classification.
    pub root_fingerprints: Option<Vec<u64>>,
}

/// What [`StoreWriter::finish`] reports about the sealed file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSummary {
    /// Clusters written.
    pub n_clusters: u64,
    /// Total file size in bytes.
    pub file_bytes: u64,
}

struct WriterState {
    file: BufWriter<File>,
    /// Record offsets relative to the clusters-section start, arrival order.
    offsets: Vec<u64>,
    /// Bytes written to the clusters section so far.
    clusters_len: u64,
    record_buf: Vec<u8>,
    /// First failure; once set, `accept` refuses everything and `finish`
    /// returns it.
    error: Option<StoreError>,
}

/// Writes a `.rcs` store as clusters stream in from the mining engine.
///
/// Implements [`ClusterSink`], so it plugs directly into
/// [`mine_to_sink`](regcluster_core::mine_to_sink): an I/O failure makes
/// `accept` return `false`, which stops the run cooperatively
/// (`stopped_by_sink`), and the failure itself is returned by
/// [`finish`](StoreWriter::finish).
///
/// # Crash atomicity
///
/// All streaming and sealing I/O goes to `<path>.tmp`; only after the
/// sealed file is flushed and fsynced does [`finish`](StoreWriter::finish)
/// rename it over `path` and fsync the parent directory. A crash (or an
/// injected failpoint, see `docs/ROBUSTNESS.md`) at **any** point
/// therefore leaves the destination either untouched (the previous
/// complete store, or absent) or the new complete store — never a torn
/// file. A writer dropped without `finish` leaves only the `.tmp`, which
/// [`ClusterStore::open`](crate::ClusterStore::open) clears as a stale
/// leftover.
pub struct StoreWriter {
    state: Mutex<WriterState>,
    final_path: PathBuf,
    tmp_path: PathBuf,
    gene_names: Vec<String>,
    cond_names: Vec<String>,
    params_json: String,
}

/// The scratch path a writer streams into before the sealing rename:
/// `<path>.tmp`, with the suffix appended to the full file name.
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Fsyncs the directory containing `path` so a just-renamed entry is
/// durable (on platforms where directories cannot be opened for sync,
/// e.g. Windows, this degrades to a no-op).
pub(crate) fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    match File::open(parent) {
        Ok(dir) => dir.sync_all(),
        Err(_) => Ok(()),
    }
}

impl StoreWriter {
    /// Prepares to write the store that will land at `path`, streaming
    /// into `<path>.tmp` until [`finish`](StoreWriter::finish) renames it
    /// into place. An existing complete store at `path` stays intact (and
    /// readable) until that rename.
    ///
    /// `gene_names` / `cond_names` are the matrix dictionaries: member and
    /// chain ids of every accepted cluster must index into them. `params`
    /// is stored verbatim for provenance (γ/ε of the run).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the scratch file cannot be created, or
    /// [`StoreError::Metadata`] if the parameters fail to serialize.
    pub fn create(
        path: impl AsRef<Path>,
        gene_names: &[String],
        cond_names: &[String],
        params: &MiningParams,
    ) -> Result<Self, StoreError> {
        let params_json =
            serde_json::to_string(params).map_err(|e| StoreError::Metadata(e.to_string()))?;
        Self::create_inner(path.as_ref(), gene_names, cond_names, params_json)
    }

    /// Like [`create`](StoreWriter::create), additionally recording which
    /// engine produced the store and its native parameters (a JSON string,
    /// typically [`BiclusterEngine::params_json`]) in the metadata section.
    ///
    /// The engine fields are spliced into the same meta JSON object that
    /// carries `params`, so a reader from before the engine era still
    /// parses the provenance it understands and simply ignores the rest.
    ///
    /// [`BiclusterEngine::params_json`]: regcluster_core::BiclusterEngine::params_json
    ///
    /// # Errors
    ///
    /// As [`create`](StoreWriter::create).
    pub fn create_with_engine(
        path: impl AsRef<Path>,
        gene_names: &[String],
        cond_names: &[String],
        params: &MiningParams,
        engine: &str,
        engine_params_json: &str,
    ) -> Result<Self, StoreError> {
        let meta = |e| StoreError::Metadata(format!("{e}"));
        let params_json = serde_json::to_string(params).map_err(meta)?;
        debug_assert!(params_json.starts_with('{') && params_json.len() > 2);
        let merged = format!(
            "{{\"engine\":{},\"engine_params\":{},{}",
            serde_json::to_string(engine).map_err(meta)?,
            serde_json::to_string(engine_params_json).map_err(meta)?,
            &params_json[1..],
        );
        Self::create_inner(path.as_ref(), gene_names, cond_names, merged)
    }

    /// Like [`create`](StoreWriter::create), additionally recording the
    /// full provenance set — engine, generation, matrix and per-root
    /// fingerprints — in the META JSON. This is the writer the delta
    /// mining pipeline uses: the fingerprints it records are what a later
    /// `mine --delta-from` run diffs against.
    ///
    /// # Errors
    ///
    /// As [`create`](StoreWriter::create).
    pub fn create_with_provenance(
        path: impl AsRef<Path>,
        gene_names: &[String],
        cond_names: &[String],
        params: &MiningParams,
        provenance: &StoreProvenance,
    ) -> Result<Self, StoreError> {
        let Value::Object(params_pairs) = params.to_json_value() else {
            return Err(StoreError::Metadata(
                "mining parameters did not serialize to an object".into(),
            ));
        };
        let int = |v: u64| Value::Int(i128::from(v));
        let mut pairs: Vec<(String, Value)> = Vec::new();
        if let Some(e) = &provenance.engine {
            pairs.push(("engine".into(), Value::Str(e.clone())));
        }
        if let Some(p) = &provenance.engine_params {
            pairs.push(("engine_params".into(), Value::Str(p.clone())));
        }
        pairs.push(("generation".into(), int(provenance.generation)));
        if let Some(fp) = provenance.matrix_fingerprint {
            pairs.push(("matrix_fingerprint".into(), int(fp)));
        }
        if let Some(fps) = &provenance.root_fingerprints {
            pairs.push((
                "root_fingerprints".into(),
                Value::Array(fps.iter().map(|&f| int(f)).collect()),
            ));
        }
        pairs.extend(params_pairs);
        let merged = serde_json::to_string(&Value::Object(pairs))
            .map_err(|e| StoreError::Metadata(e.to_string()))?;
        Self::create_inner(path.as_ref(), gene_names, cond_names, merged)
    }

    /// Like [`create`](StoreWriter::create), but taking the META JSON
    /// document verbatim. The document must be an object parseable as
    /// [`MiningParams`]; any **additional** keys are stored untouched and
    /// survive an open/re-render cycle (the round-trip property the
    /// format's forward compatibility rests on — see the proptest in
    /// `crates/store/tests/roundtrip.rs`).
    ///
    /// # Errors
    ///
    /// [`StoreError::Metadata`] when the document does not parse as a
    /// params-bearing object, otherwise as [`create`](StoreWriter::create).
    pub fn create_with_meta_json(
        path: impl AsRef<Path>,
        gene_names: &[String],
        cond_names: &[String],
        meta_json: &str,
    ) -> Result<Self, StoreError> {
        let doc = serde_json::parse_value_str(meta_json)
            .map_err(|e| StoreError::Metadata(format!("meta JSON unreadable: {e}")))?;
        if !matches!(doc, Value::Object(_)) {
            return Err(StoreError::Metadata("meta JSON is not an object".into()));
        }
        let _: MiningParams = serde_json::from_str(meta_json)
            .map_err(|e| StoreError::Metadata(format!("meta JSON lacks valid params: {e}")))?;
        Self::create_inner(path.as_ref(), gene_names, cond_names, meta_json.to_string())
    }

    fn create_inner(
        path: &Path,
        gene_names: &[String],
        cond_names: &[String],
        params_json: String,
    ) -> Result<Self, StoreError> {
        let final_path = path.to_path_buf();
        let tmp = tmp_path(&final_path);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        let mut file = BufWriter::new(file);
        // Placeholder header; patched by `finish` once the table offset and
        // checksum are known. Until then the magic is zeroed, so a reader
        // can never mistake an unsealed file for a valid store.
        file.write_all(&[0u8; HEADER_LEN])?;
        Ok(StoreWriter {
            state: Mutex::new(WriterState {
                file,
                offsets: Vec::new(),
                clusters_len: 0,
                record_buf: Vec::new(),
                error: None,
            }),
            final_path,
            tmp_path: tmp,
            gene_names: gene_names.to_vec(),
            cond_names: cond_names.to_vec(),
            params_json,
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WriterState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Clusters accepted so far.
    pub fn n_written(&self) -> u64 {
        self.lock().offsets.len() as u64
    }

    fn encode_record(&self, cluster: &RegCluster, out: &mut Vec<u8>) -> Result<(), StoreError> {
        out.clear();
        let check = |ids: &[usize], bound: usize, what: &str| -> Result<(), StoreError> {
            for &v in ids {
                if v >= bound {
                    return Err(StoreError::IdOutOfRange(format!(
                        "{what} id {v} not in dictionary (size {bound})"
                    )));
                }
            }
            Ok(())
        };
        check(&cluster.chain, self.cond_names.len(), "condition")?;
        check(&cluster.p_members, self.gene_names.len(), "gene")?;
        check(&cluster.n_members, self.gene_names.len(), "gene")?;
        put_u32(out, cluster.chain.len() as u32);
        put_u32(out, cluster.p_members.len() as u32);
        put_u32(out, cluster.n_members.len() as u32);
        for &c in &cluster.chain {
            put_u32(out, c as u32);
        }
        for &g in &cluster.p_members {
            put_u32(out, g as u32);
        }
        for &g in &cluster.n_members {
            put_u32(out, g as u32);
        }
        Ok(())
    }

    /// Appends one cluster record. Prefer the [`ClusterSink`] impl when
    /// mining; this is the offline path (e.g. converting a JSON result).
    ///
    /// # Errors
    ///
    /// [`StoreError::IdOutOfRange`] for ids outside the dictionaries,
    /// [`StoreError::Io`] on write failure. After an error the writer is
    /// poisoned: further writes are refused and `finish` reports the
    /// original failure.
    pub fn write_cluster(&self, cluster: &RegCluster) -> Result<(), StoreError> {
        let mut state = self.lock();
        if let Some(e) = &state.error {
            return Err(StoreError::Format(format!(
                "writer already failed: {e}; record refused"
            )));
        }
        let mut buf = std::mem::take(&mut state.record_buf);
        let result = self.encode_record(cluster, &mut buf).and_then(|()| {
            regcluster_failpoint::io("store::record_write")?;
            state.file.write_all(&buf)?;
            let off = state.clusters_len;
            state.offsets.push(off);
            state.clusters_len += buf.len() as u64;
            Ok(())
        });
        state.record_buf = buf;
        if let Err(e) = result {
            let msg = e.to_string();
            state.error = Some(e);
            return Err(StoreError::Format(msg));
        }
        Ok(())
    }

    /// Appends one cluster as already-packed record bytes, e.g. straight
    /// from [`ClusterStore::record_bytes`](crate::ClusterStore::record_bytes)
    /// — the splice path of delta mining, which copies unchanged-root
    /// records between stores without materializing [`RegCluster`]s. The
    /// record's shape and every id are still validated against this
    /// writer's dictionaries, so a cross-store mix-up cannot seal a
    /// corrupt file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Format`] for malformed record bytes,
    /// [`StoreError::IdOutOfRange`] for ids outside the dictionaries,
    /// [`StoreError::Io`] on write failure — with the same poisoning
    /// behavior as [`write_cluster`](StoreWriter::write_cluster).
    pub fn write_raw_record(&self, record: &[u8]) -> Result<(), StoreError> {
        if record.len() < 12 {
            return Err(StoreError::Format(format!(
                "raw record of {} bytes is shorter than its length prefix",
                record.len()
            )));
        }
        let chain_len = crate::format::u32_at(record, 0) as usize;
        let p_len = crate::format::u32_at(record, 1) as usize;
        let n_len = crate::format::u32_at(record, 2) as usize;
        let expected = 12 + 4 * (chain_len + p_len + n_len);
        if record.len() != expected || chain_len == 0 {
            return Err(StoreError::Format(format!(
                "raw record declares {chain_len}+{p_len}+{n_len} ids \
                 ({expected} bytes) but holds {} bytes",
                record.len()
            )));
        }
        for i in 0..chain_len {
            let c = crate::format::u32_at(record, 3 + i) as usize;
            if c >= self.cond_names.len() {
                return Err(StoreError::IdOutOfRange(format!(
                    "condition id {c} not in dictionary (size {})",
                    self.cond_names.len()
                )));
            }
        }
        for i in 0..p_len + n_len {
            let g = crate::format::u32_at(record, 3 + chain_len + i) as usize;
            if g >= self.gene_names.len() {
                return Err(StoreError::IdOutOfRange(format!(
                    "gene id {g} not in dictionary (size {})",
                    self.gene_names.len()
                )));
            }
        }
        let mut state = self.lock();
        if let Some(e) = &state.error {
            return Err(StoreError::Format(format!(
                "writer already failed: {e}; record refused"
            )));
        }
        let result = (|| -> Result<(), StoreError> {
            regcluster_failpoint::io("store::record_write")?;
            state.file.write_all(record)?;
            let off = state.clusters_len;
            state.offsets.push(off);
            state.clusters_len += record.len() as u64;
            Ok(())
        })();
        if let Err(e) = result {
            let msg = e.to_string();
            state.error = Some(e);
            return Err(StoreError::Format(msg));
        }
        Ok(())
    }

    /// Seals the store: canonical offsets table, size table, inverted
    /// indexes, metadata, dictionaries, section table, header — in that
    /// order — then fsyncs the scratch file, renames it over the
    /// destination, and fsyncs the parent directory. The destination is
    /// replaced atomically: it either still holds its previous contents
    /// or the new complete store, never a torn intermediate.
    ///
    /// # Errors
    ///
    /// The first write failure recorded during streaming, or any failure
    /// while sealing. On error the scratch `.tmp` is removed (best
    /// effort) and the destination is left untouched.
    pub fn finish(self) -> Result<StoreSummary, StoreError> {
        let tmp = self.tmp_path.clone();
        let result = self.finish_inner();
        if result.is_err() {
            // Best effort: if the failure happened after the rename the
            // tmp is already gone and this is a no-op.
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    fn finish_inner(self) -> Result<StoreSummary, StoreError> {
        let state = self
            .state
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(e) = state.error {
            return Err(e);
        }
        let WriterState {
            file,
            offsets,
            clusters_len,
            ..
        } = state;
        let mut file = file
            .into_inner()
            .map_err(|e| StoreError::Io(std::io::Error::other(e.to_string())))?;

        // Re-read the streamed records once to canonicalize and index. The
        // records stay on disk; only (chain, members) copies are held here.
        file.seek(SeekFrom::Start(HEADER_LEN as u64))?;
        let mut clusters_raw = vec![0u8; clusters_len as usize];
        file.read_exact(&mut clusters_raw)?;
        let decoded: Vec<RegCluster> = offsets
            .iter()
            .map(|&off| decode_record(&clusters_raw, off).map(|(c, _)| c))
            .collect::<Result<_, _>>()?;

        // Canonical permutation: the same (chain, p, n) order the collect
        // path sorts into, so cluster ids are stable across thread counts.
        let mut order: Vec<u32> = (0..decoded.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let (x, y) = (&decoded[a as usize], &decoded[b as usize]);
            x.chain
                .cmp(&y.chain)
                .then_with(|| x.p_members.cmp(&y.p_members))
                .then_with(|| x.n_members.cmp(&y.n_members))
        });

        // Rewrite the clusters section itself in canonical order, not just
        // the offsets table. This makes the sealed *bytes* a function of
        // the cluster set alone — independent of arrival order — so a
        // multi-threaded run, a delta splice, and a multi-worker shard
        // merge ([`merge_shards`](crate::merge_shards)) all seal to the
        // identical file, which is what the distributed golden tests
        // byte-compare.
        let mut canonical_raw = Vec::with_capacity(clusters_raw.len());
        let mut canonical_offsets = Vec::with_capacity(order.len());
        for &arrival in &order {
            let off = offsets[arrival as usize] as usize;
            let c = &decoded[arrival as usize];
            let len = 12 + 4 * (c.chain.len() + c.p_members.len() + c.n_members.len());
            canonical_offsets.push(canonical_raw.len() as u64);
            canonical_raw.extend_from_slice(&clusters_raw[off..off + len]);
        }
        debug_assert_eq!(canonical_raw.len(), clusters_raw.len());
        file.seek(SeekFrom::Start(HEADER_LEN as u64))?;
        file.write_all(&canonical_raw)?;
        let clusters_raw = canonical_raw;

        // Inverted postings, ascending by construction (canonical id order).
        let mut gene_postings: Vec<Vec<u32>> = vec![Vec::new(); self.gene_names.len()];
        let mut cond_postings: Vec<Vec<u32>> = vec![Vec::new(); self.cond_names.len()];
        for (id, &arrival) in order.iter().enumerate() {
            let c = &decoded[arrival as usize];
            for g in c.genes_iter() {
                gene_postings[g].push(id as u32);
            }
            for &cond in &c.chain {
                cond_postings[cond].push(id as u32);
            }
        }

        let mut sections: Vec<Section> = vec![Section {
            id: SectionId::Clusters,
            offset: HEADER_LEN as u64,
            len: clusters_len,
            checksum: Fnv64::hash(&clusters_raw),
        }];
        let mut cursor = HEADER_LEN as u64 + clusters_len;
        file.seek(SeekFrom::Start(cursor))?;
        let mut file = BufWriter::new(file);

        let mut write_section =
            |file: &mut BufWriter<File>, id: SectionId, payload: &[u8]| -> Result<(), StoreError> {
                // One evaluation per section boundary: `@n` picks which
                // of the seven sealing sections the chaos test kills at.
                regcluster_failpoint::io("store::section_flush")?;
                file.write_all(payload)?;
                sections.push(Section {
                    id,
                    offset: cursor,
                    len: payload.len() as u64,
                    checksum: Fnv64::hash(payload),
                });
                cursor += payload.len() as u64;
                Ok(())
            };

        let mut buf = Vec::new();
        for &off in &canonical_offsets {
            put_u64(&mut buf, off);
        }
        write_section(&mut file, SectionId::Offsets, &buf)?;

        buf.clear();
        for &arrival in &order {
            let c = &decoded[arrival as usize];
            put_u32(&mut buf, c.n_genes() as u32);
            put_u32(&mut buf, c.n_conditions() as u32);
        }
        write_section(&mut file, SectionId::Sizes, &buf)?;

        encode_csr(&gene_postings, &mut buf);
        write_section(&mut file, SectionId::GeneIndex, &buf)?;
        encode_csr(&cond_postings, &mut buf);
        write_section(&mut file, SectionId::CondIndex, &buf)?;

        buf.clear();
        put_u64(&mut buf, self.gene_names.len() as u64);
        put_u64(&mut buf, self.cond_names.len() as u64);
        put_u64(&mut buf, decoded.len() as u64);
        buf.extend_from_slice(self.params_json.as_bytes());
        write_section(&mut file, SectionId::Meta, &buf)?;

        encode_dict(&self.gene_names, &mut buf);
        write_section(&mut file, SectionId::GeneDict, &buf)?;
        encode_dict(&self.cond_names, &mut buf);
        write_section(&mut file, SectionId::CondDict, &buf)?;

        // Section table, then the real header.
        let table_offset = cursor;
        buf.clear();
        for s in &sections {
            put_u32(&mut buf, s.id as u32);
            put_u32(&mut buf, 0);
            put_u64(&mut buf, s.offset);
            put_u64(&mut buf, s.len);
            put_u64(&mut buf, s.checksum);
        }
        let table_checksum = Fnv64::hash(&buf);
        file.write_all(&buf)?;
        let file_bytes = table_offset + buf.len() as u64;

        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        put_u32(&mut header, FORMAT_VERSION);
        put_u32(&mut header, sections.len() as u32);
        put_u64(&mut header, table_offset);
        put_u64(&mut header, table_checksum);
        debug_assert_eq!(header.len(), HEADER_LEN);
        regcluster_failpoint::io("store::seal_header")?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header)?;
        file.flush()?;
        regcluster_failpoint::io("store::fsync_file")?;
        file.get_ref().sync_all()?;
        drop(file);
        // The commit point: everything before this leaves the destination
        // untouched; everything at or after it leaves the new complete
        // store in place.
        regcluster_failpoint::io("store::rename")?;
        std::fs::rename(&self.tmp_path, &self.final_path)?;
        regcluster_failpoint::io("store::dir_sync")?;
        sync_parent_dir(&self.final_path)?;

        Ok(StoreSummary {
            n_clusters: decoded.len() as u64,
            file_bytes,
        })
    }
}

impl ClusterSink for StoreWriter {
    /// Streams one cluster to disk; returns `false` (stopping the run
    /// cooperatively) after the first failure, which
    /// [`finish`](StoreWriter::finish) then reports.
    fn accept(&self, cluster: RegCluster) -> bool {
        self.write_cluster(&cluster).is_ok()
    }
}

/// Decodes the record starting at `off`, returning it and its byte length.
pub(crate) fn decode_record(
    clusters_raw: &[u8],
    off: u64,
) -> Result<(RegCluster, usize), StoreError> {
    let off = usize::try_from(off)
        .ok()
        .filter(|&o| o <= clusters_raw.len())
        .ok_or_else(|| StoreError::Format(format!("record offset {off} past clusters section")))?;
    let mut r = ByteReader::new(&clusters_raw[off..], "cluster record");
    let chain_len = r.u32()? as usize;
    let p_len = r.u32()? as usize;
    let n_len = r.u32()? as usize;
    let mut read_ids = |n: usize| -> Result<Vec<usize>, StoreError> {
        let raw = r.bytes(n * 4)?;
        Ok((0..n)
            .map(|i| crate::format::u32_at(raw, i) as usize)
            .collect())
    };
    let chain = read_ids(chain_len)?;
    let p_members = read_ids(p_len)?;
    let n_members = read_ids(n_len)?;
    let used = 12 + 4 * (chain_len + p_len + n_len);
    Ok((
        RegCluster {
            chain,
            p_members,
            n_members,
        },
        used,
    ))
}

/// CSR layout: `(lists.len() + 1)` u32 prefix starts, then the
/// concatenated postings.
fn encode_csr(lists: &[Vec<u32>], out: &mut Vec<u8>) {
    out.clear();
    let mut start = 0u32;
    put_u32(out, start);
    for l in lists {
        start += l.len() as u32;
        put_u32(out, start);
    }
    for l in lists {
        for &v in l {
            put_u32(out, v);
        }
    }
}

fn encode_dict(names: &[String], out: &mut Vec<u8>) {
    out.clear();
    put_u32(out, names.len() as u32);
    for n in names {
        put_u32(out, n.len() as u32);
        out.extend_from_slice(n.as_bytes());
    }
}
