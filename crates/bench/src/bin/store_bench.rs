//! Serving-path benchmarks of the `.rcs` cluster store.
//!
//! Mines two workloads — the Figure-7 default (few, large clusters) and a
//! denser low-threshold variant (hundreds of clusters) — persists each
//! result both as a `.rcs` store and as the equivalent JSON document a
//! store-less server would load, then measures what the serving layer
//! actually pays:
//!
//! * **open latency** — `ClusterStore::open` (read + full checksum
//!   verification) vs. parsing the same content from JSON, the cost every
//!   process start pays;
//! * **query throughput** — queries/sec for the index-backed lookups the
//!   HTTP layer exposes (by-gene, by-condition, conjunctive with size
//!   floors, top-k) plus single-record materialization.
//!
//! Results go to `results/store_bench.json` (table on stdout).

use regcluster_bench::{quick_mode, time, write_json};
use regcluster_core::{mine, MiningParams, RegCluster};
use regcluster_datagen::{generate, SyntheticConfig};
use regcluster_matrix::ExpressionMatrix;
use regcluster_store::{ClusterStore, Query, StoreWriter};
use serde::Serialize;

/// What a JSON-backed server would have to load instead of the store: the
/// clusters *plus* the dictionaries and provenance the store carries.
#[derive(Serialize, serde::Deserialize)]
struct JsonEquivalent {
    gene_names: Vec<String>,
    cond_names: Vec<String>,
    params: MiningParams,
    clusters: Vec<RegCluster>,
}

#[derive(Serialize)]
struct QueryPoint {
    query: &'static str,
    iterations: usize,
    total_s: f64,
    queries_per_sec: f64,
}

#[derive(Serialize)]
struct WorkloadResult {
    workload: &'static str,
    n_genes: usize,
    n_conds: usize,
    n_clusters: usize,
    store_bytes: u64,
    json_bytes: usize,
    open_reps: usize,
    open_store_ms: f64,
    parse_json_ms: f64,
    open_speedup: f64,
    points: Vec<QueryPoint>,
}

fn bench_queries(store: &ClusterStore, iterations: usize, points: &mut Vec<QueryPoint>) {
    let n_genes = store.n_genes();
    let n_conds = store.n_conds();
    let n_clusters = store.n_clusters().max(1);

    // A (gene, cond) pair that actually occurs together, so the
    // conjunctive query does real intersection work.
    let sample = store.cluster(0).expect("store is non-empty");
    let hot_gene = sample.p_members[0] as u32;
    let hot_cond = sample.chain[0] as u32;

    let mut run = |name: &'static str, mut f: Box<dyn FnMut(usize) -> usize + '_>| {
        let (hits, total_s) = time(|| {
            let mut acc = 0usize;
            for i in 0..iterations {
                acc = acc.wrapping_add(f(i));
            }
            acc
        });
        std::hint::black_box(hits);
        println!(
            "{name:>22}  {iterations:>10}  {total_s:>9.3}  {:>12.0}",
            iterations as f64 / total_s
        );
        points.push(QueryPoint {
            query: name,
            iterations,
            total_s,
            queries_per_sec: iterations as f64 / total_s,
        });
    };

    run(
        "by-gene",
        Box::new(move |i| store.clusters_with_gene((i as u32) % n_genes).count()),
    );
    run(
        "by-cond",
        Box::new(move |i| store.clusters_with_cond((i as u32) % n_conds).count()),
    );
    run(
        "conjunctive",
        Box::new(move |_| {
            let q = Query::new()
                .with_gene(hot_gene)
                .with_cond(hot_cond)
                .with_min_genes(4)
                .with_min_conds(4);
            store.query(&q).expect("valid ids").len()
        }),
    );
    run(
        "top-10",
        Box::new(move |_| {
            store
                .query(&Query::new().with_top_k(10))
                .expect("valid")
                .len()
        }),
    );
    run(
        "materialize-record",
        Box::new(move |i| {
            store
                .cluster((i as u32) % n_clusters)
                .expect("in bounds")
                .n_genes()
        }),
    );
}

fn bench_workload(
    workload: &'static str,
    m: &ExpressionMatrix,
    params: &MiningParams,
    quick: bool,
) -> WorkloadResult {
    let (clusters, mine_s) = time(|| mine(m, params).expect("mining succeeds"));
    println!(
        "\nworkload {workload}: {} genes × {} conditions → {} clusters (mined in {mine_s:.2}s)",
        m.n_genes(),
        m.n_conditions(),
        clusters.len()
    );
    assert!(!clusters.is_empty(), "benchmark needs a non-empty store");

    let dir = std::env::temp_dir().join(format!(
        "regcluster-store-bench-{}-{workload}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let store_path = dir.join("bench.rcs");
    let writer = StoreWriter::create(&store_path, m.gene_names(), m.condition_names(), params)
        .expect("store create");
    for c in &clusters {
        writer.write_cluster(c).expect("store write");
    }
    let summary = writer.finish().expect("store seal");
    let json = serde_json::to_string(&JsonEquivalent {
        gene_names: m.gene_names().to_vec(),
        cond_names: m.condition_names().to_vec(),
        params: params.clone(),
        clusters: clusters.clone(),
    })
    .expect("clusters serialize");
    println!(
        "artifacts: store {} bytes, JSON {} bytes",
        summary.file_bytes,
        json.len()
    );

    // Open latency: every serving process pays one of these at startup.
    let open_reps = if quick { 20 } else { 100 };
    let (_, store_open_s) = time(|| {
        for _ in 0..open_reps {
            std::hint::black_box(ClusterStore::open(&store_path).expect("store opens"));
        }
    });
    let (_, json_parse_s) = time(|| {
        for _ in 0..open_reps {
            let parsed: JsonEquivalent = serde_json::from_str(&json).expect("json parses");
            std::hint::black_box(parsed);
        }
    });
    let open_store_ms = store_open_s / open_reps as f64 * 1e3;
    let parse_json_ms = json_parse_s / open_reps as f64 * 1e3;
    println!(
        "open latency over {open_reps} reps: store {open_store_ms:.3} ms, \
         JSON parse {parse_json_ms:.3} ms ({:.1}× faster)",
        parse_json_ms / open_store_ms
    );

    let store = ClusterStore::open(&store_path).expect("store opens");
    let iterations = if quick { 2_000 } else { 20_000 };
    println!(
        "{:>22}  {:>10}  {:>9}  {:>12}",
        "query", "iterations", "total (s)", "queries/sec"
    );
    let mut points = Vec::new();
    bench_queries(&store, iterations, &mut points);
    std::fs::remove_dir_all(&dir).ok();

    WorkloadResult {
        workload,
        n_genes: m.n_genes(),
        n_conds: m.n_conditions(),
        n_clusters: clusters.len(),
        store_bytes: summary.file_bytes,
        json_bytes: json.len(),
        open_reps,
        open_store_ms,
        parse_json_ms,
        open_speedup: parse_json_ms / open_store_ms,
        points,
    }
}

fn main() {
    let quick = quick_mode();
    let mut workloads = Vec::new();

    // Figure-7 default: few large clusters, dictionary-dominated files.
    let fig7 = generate(&SyntheticConfig {
        n_genes: if quick { 600 } else { 3000 },
        ..SyntheticConfig::default()
    })
    .expect("feasible");
    let min_g = ((0.01 * fig7.matrix.n_genes() as f64).round() as usize).max(2);
    let params = MiningParams::new(min_g, 6, 0.1, 0.01).expect("valid");
    workloads.push(bench_workload("fig7", &fig7.matrix, &params, quick));

    // Dense: lowered thresholds multiply the emitted clusters, the regime
    // where record decode cost dominates a JSON load.
    let dense = generate(&SyntheticConfig {
        n_genes: if quick { 300 } else { 1000 },
        n_conds: 30,
        n_clusters: 10,
        avg_cluster_dims: 8,
        cluster_gene_frac: 0.03,
        ..SyntheticConfig::default()
    })
    .expect("feasible");
    let params = MiningParams::new(4, 4, 0.1, 0.05).expect("valid");
    workloads.push(bench_workload("dense", &dense.matrix, &params, quick));

    write_json("store_bench.json", &workloads);
}
