//! The reg-cluster mining algorithm (§4, Figure 5 of the paper).
//!
//! The miner performs a **bi-directional depth-first search** over
//! *representative regulation chains*. A node of the enumeration tree is a
//! partial chain `C.Y = c_{k1} ↰ … ↰ c_{km}` together with its member genes:
//! **p-members** whose expression strictly increases along the chain (each
//! step crossing a regulation pointer of their `RWave^γ` model) and
//! **n-members** whose expression strictly decreases (they follow the
//! inverted chain — the negatively co-regulated genes). Extension candidates
//! are the regulation successors of the chain tail in the p-members' models
//! (Lemma 3.1); each candidate's gene set is sorted by coherence score
//! (Equation 7) and partitioned into maximal ε-windows of at least `MinG`
//! genes, every window spawning a child node.
//!
//! The four pruning strategies of the paper are implemented exactly:
//!
//! 1. **MinG pruning** — a node with fewer than `MinG` member genes is
//!    abandoned (extension only sheds genes);
//! 2. **MinC pruning** — a gene whose longest possible chain through the
//!    candidate falls short of `MinC` is dropped (powered by the
//!    precomputed max-chain tables of [`RWaveModel`]);
//! 3. **Redundant pruning** — (a) a node whose p-members number fewer than
//!    `MinG/2` can never be representative (`|pX| ≥ |nX|` must hold at
//!    output, so `2·|pX| ≥ MinG`); (b) a node whose validated cluster was
//!    already emitted roots a redundant subtree;
//! 4. **Coherence pruning** — a candidate with no valid ε-window is skipped.
//!
//! Thanks to (2) and (3)(a), only p-members need to be scanned for extension
//! candidates: a candidate supported solely by n-members leads to a node
//! with zero p-members, which (3)(a) prunes immediately.

use regcluster_matrix::{CondId, ExpressionMatrix, GeneId};

use crate::coherence::maximal_windows_into;
use crate::intern::{ClusterView, EmittedSet};
use crate::observer::{MineObserver, NoopObserver, PruneRule};
use crate::rwave::RWaveModel;
use crate::scratch::{ChildBuf, MineWorkspace, NodeScratch};
use crate::tables::HotTables;
use crate::{CoreError, MiningParams, RegCluster};

/// Direction in which a gene follows the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Dir {
    /// p-member: expression increases along the chain.
    Fwd,
    /// n-member: expression decreases along the chain (inverted chain).
    Bwd,
}

/// A gene participating in the current node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Member {
    pub(crate) gene: GeneId,
    pub(crate) dir: Dir,
    /// The baseline difference `d[c_{k2}] − d[c_{k1}]` (signed; negative for
    /// n-members). Set when the chain reaches length 2; `0.0` before that.
    pub(crate) denom: f64,
}

/// Per-node qualification context of one member, precomputed before the
/// candidate loop: a candidate condition at rank `r` in this member's model
/// qualifies **iff** `lo ≤ r < hi` (the [`HotTables`] range collapsing the
/// direction test, the regulation test, and the MinC max-chain test into
/// two `u32` compares), and `base` caches the member's expression value at
/// the chain tail so each candidate costs one load + one subtract.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MemberCtx {
    pub(crate) lo: u32,
    pub(crate) hi: u32,
    pub(crate) base: f64,
}

/// What the emission receiver made of a validated cluster.
///
/// The receiver sees a borrowed [`ClusterView`] and is responsible for
/// duplicate elimination; a fresh view is materialized into a
/// [`RegCluster`] exactly once, by the receiver, which also reports
/// [`MineObserver::cluster_emitted`] for it.
pub(crate) enum EmitOutcome {
    /// First sighting; the subtree continues.
    Fresh,
    /// First sighting, but the receiver wants no more clusters (cluster cap
    /// reached) — the expansion yields no children and flags a stop.
    FreshAndStop,
    /// The identical cluster was emitted before — pruning (3)(b), the whole
    /// subtree is redundant.
    Duplicate,
}

/// Reusable mining engine: builds the per-gene `RWave^γ` models once and can
/// then mine from all roots (sequentially or in parallel).
pub struct Miner<'a> {
    matrix: &'a ExpressionMatrix,
    params: &'a MiningParams,
    models: Vec<RWaveModel>,
    /// Flat struct-of-arrays projection of `models` for the hot path (see
    /// [`HotTables`]); rebuilt with the models, never mutated afterwards.
    tables: HotTables,
}

/// Per-run mutable state threaded through the recursion.
struct RunState<'o> {
    out: Vec<RegCluster>,
    emitted: EmittedSet,
    observer: &'o mut dyn MineObserver,
    /// Query mining: abandon any node that loses this gene (sound because
    /// member sets only shrink along a path).
    required: Option<GeneId>,
}

impl<'a> Miner<'a> {
    /// Builds the `RWave^γ` models for every gene.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] when the parameters fail
    /// validation.
    pub fn new(matrix: &'a ExpressionMatrix, params: &'a MiningParams) -> Result<Self, CoreError> {
        params.validate()?;
        let models: Vec<RWaveModel> = (0..matrix.n_genes())
            .map(|g| {
                let row = matrix.row(g);
                RWaveModel::build(row, params.gamma.resolve(row))
            })
            .collect();
        let tables = HotTables::build(&models, matrix.n_conditions());
        Ok(Self {
            matrix,
            params,
            models,
            tables,
        })
    }

    /// The per-gene models (exposed for inspection and reporting).
    pub fn models(&self) -> &[RWaveModel] {
        &self.models
    }

    /// The matrix this miner was built over (for checkpoint provenance).
    pub(crate) fn matrix(&self) -> &'a ExpressionMatrix {
        self.matrix
    }

    /// The parameters this miner was built with (for checkpoint provenance).
    pub(crate) fn params(&self) -> &'a MiningParams {
        self.params
    }

    /// Number of conditions in the underlying matrix — one enumeration
    /// root per condition.
    pub fn n_conditions(&self) -> usize {
        self.matrix.n_conditions()
    }

    /// Mines every representative regulation chain rooted at every
    /// condition, in condition order, reporting events to `observer`.
    ///
    /// The result is sorted canonically (by chain, then members) so that
    /// sequential and parallel runs compare equal. With `max_clusters` set,
    /// the cap keeps the canonically-first clusters of the full result —
    /// deterministic and identical across sequential and parallel runs. For
    /// a cooperative early stop instead, mine through the engine with a
    /// [`CappedSink`](crate::engine::CappedSink).
    pub fn mine_all(&self, observer: &mut dyn MineObserver) -> Vec<RegCluster> {
        self.mine_all_with(&mut MineWorkspace::new(), observer)
    }

    /// Like [`mine_all`](Self::mine_all), drawing all per-node working
    /// memory from `workspace`.
    ///
    /// The workspace buffers grow to their high-water marks during the first
    /// run and are reused afterwards, so repeated runs on a warmed workspace
    /// perform **zero heap allocations per enumeration node** — they
    /// allocate only for the clusters they emit (asserted by the allocation
    /// regression tests).
    pub fn mine_all_with(
        &self,
        workspace: &mut MineWorkspace,
        observer: &mut dyn MineObserver,
    ) -> Vec<RegCluster> {
        let mut out = self.run_roots(workspace, observer, None, 0..self.matrix.n_conditions());
        finalize(&mut out, self.params);
        out
    }

    /// Query mining: only clusters containing `gene` are produced, with the
    /// search pruned the moment a subtree loses that gene — typically far
    /// cheaper than full mining plus filtering when the gene's profile is
    /// selective.
    ///
    /// The result equals `mine_all` filtered to clusters containing `gene`
    /// (asserted by tests).
    pub fn mine_containing(
        &self,
        gene: GeneId,
        observer: &mut dyn MineObserver,
    ) -> Vec<RegCluster> {
        let mut out = self.run_roots(
            &mut MineWorkspace::new(),
            observer,
            Some(gene),
            0..self.matrix.n_conditions(),
        );
        finalize(&mut out, self.params);
        out
    }

    /// Mines only the subtree rooted at condition `root`. Used by the
    /// parallel driver; results are **not** post-filtered or sorted.
    pub fn mine_root(&self, root: CondId, observer: &mut dyn MineObserver) -> Vec<RegCluster> {
        self.run_roots(&mut MineWorkspace::new(), observer, None, root..root + 1)
    }

    /// Runs the depth-first enumeration over the given roots, collecting raw
    /// (un-finalized) clusters. All per-node memory comes from `workspace`.
    fn run_roots(
        &self,
        workspace: &mut MineWorkspace,
        observer: &mut dyn MineObserver,
        required: Option<GeneId>,
        roots: std::ops::Range<CondId>,
    ) -> Vec<RegCluster> {
        workspace.prepare(self.matrix.n_conditions());
        let mut state = RunState {
            out: Vec::new(),
            emitted: EmittedSet::default(),
            observer,
            required,
        };
        let MineWorkspace {
            scratch,
            levels,
            chain,
            node_members,
        } = workspace;
        for root in roots {
            self.root_members_into(root, node_members);
            chain.clear();
            chain.push(root);
            if self.recurse(chain, node_members, scratch, levels, &mut state) {
                break;
            }
        }
        state.out
    }

    /// Writes the level-1 member set of `root` into `out` (cleared first):
    /// every gene whose max-chain table allows `MinC` conditions in the
    /// given direction.
    pub(crate) fn root_members_into(&self, root: CondId, out: &mut Vec<Member>) {
        out.clear();
        let t = &self.tables;
        let idx = t.need_index(self.params.min_conds);
        // `maxlen_fwd(r) ≥ MinC ⟺ r < fwd_ge[MinC]` and
        // `maxlen_bwd(r) ≥ MinC ⟺ r ≥ bwd_start[MinC]` — the threshold
        // tables make the root sweep a flat sequential walk.
        for g in 0..self.models.len() {
            let r = t.rank_of(g, root) as u32;
            let fwd_cut = t.fwd_cutoff(g, idx);
            let bwd_first = t.bwd_first(g, idx);
            if r < fwd_cut {
                out.push(Member {
                    gene: g,
                    dir: Dir::Fwd,
                    denom: 0.0,
                });
            }
            if r >= bwd_first {
                out.push(Member {
                    gene: g,
                    dir: Dir::Bwd,
                    denom: 0.0,
                });
            }
        }
    }

    /// The level-1 member set of `root` as an owned list (used to seed the
    /// engine's shared queue, where tasks must own their members).
    pub(crate) fn root_members(&self, root: CondId) -> Vec<Member> {
        let mut out = Vec::new();
        self.root_members_into(root, &mut out);
        out
    }

    /// The genes in `root`'s level-1 member set, as `(gene, forward)`
    /// pairs in gene order. This is exactly the membership the delta
    /// layer's per-root fingerprint hashes
    /// ([`root_fingerprints`](crate::delta::root_fingerprints)) — exposed
    /// so property tests can verify fingerprint stability claims (a
    /// permutation of *non-member* rows must not disturb a root's
    /// fingerprint) without reaching into crate internals.
    pub fn root_member_genes(&self, root: CondId) -> Vec<(usize, bool)> {
        self.root_members(root)
            .into_iter()
            .map(|m| (m.gene, m.dir == Dir::Fwd))
            .collect()
    }

    /// Depth-first traversal over [`expand_node`](Self::expand_node),
    /// threading the sequential run state. Returns `true` when the emission
    /// receiver asked the run to stop.
    ///
    /// `levels` holds one [`ChildBuf`] per remaining depth: the head buffer
    /// receives this node's children and stays borrowed (as the source of
    /// each child's member slice) while the tail recurses — splitting the
    /// levels is what lets every depth reuse its buffer without any
    /// per-node allocation.
    fn recurse(
        &self,
        chain: &mut Vec<CondId>,
        members: &[Member],
        scratch: &mut NodeScratch,
        levels: &mut [ChildBuf],
        state: &mut RunState<'_>,
    ) -> bool {
        let (cur, rest) = levels
            .split_first_mut()
            .expect("workspace levels cover the maximum chain depth");
        let RunState {
            out,
            emitted,
            observer,
            required,
        } = state;
        let stop = self.expand_node(
            chain,
            members,
            *required,
            scratch,
            cur,
            &mut **observer,
            &mut |view, obs| {
                // Pruning (3)(b): an already-emitted cluster roots a
                // redundant subtree. Duplicate probes allocate nothing.
                if !emitted.insert(view.fingerprint(), view) {
                    return EmitOutcome::Duplicate;
                }
                let cluster = view.to_cluster();
                obs.cluster_emitted(&cluster);
                out.push(cluster);
                EmitOutcome::Fresh
            },
        );
        if stop {
            return true;
        }
        for i in 0..cur.index.len() {
            let child = cur.index[i];
            chain.push(child.cond);
            let stop = self.recurse(chain, cur.members_of(child), scratch, rest, state);
            chain.pop();
            if stop {
                return true;
            }
        }
        false
    }

    /// Expands one enumeration node: reports events to `observer`, offers a
    /// validated representative cluster to `try_emit` (as a borrowed
    /// [`ClusterView`]; the receiver materializes fresh clusters and reports
    /// them emitted), and writes the children into `children` in depth-first
    /// order. Returns `true` when the receiver asked the whole run to stop.
    /// This is the single copy of the paper's Figure 5 node semantics — the
    /// sequential recursion and the parallel [`engine`](crate::engine) both
    /// drive their traversals through it, so they cannot diverge.
    ///
    /// All working memory comes from `scratch` and `children` (cleared on
    /// entry, capacity retained), so steady-state calls allocate nothing.
    ///
    /// `chain` is mutated (push/pop of candidate conditions) to report prune
    /// events at child paths, but is always restored before returning.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn expand_node(
        &self,
        chain: &mut Vec<CondId>,
        members: &[Member],
        required: Option<GeneId>,
        scratch: &mut NodeScratch,
        children: &mut ChildBuf,
        observer: &mut dyn MineObserver,
        try_emit: &mut dyn FnMut(&ClusterView<'_>, &mut dyn MineObserver) -> EmitOutcome,
    ) -> bool {
        children.clear();
        let NodeScratch {
            cand,
            ctx,
            counts,
            offsets,
            mem,
            scores,
            keys,
            hs,
            windows,
            p_genes,
            n_genes,
            genes,
        } = scratch;

        let n_fwd = members.iter().filter(|m| m.dir == Dir::Fwd).count();
        let n_bwd = members.len() - n_fwd;
        // At depth 1 a gene may appear once per direction; count genes, not
        // entries (members are generated gene-ascending there, and are
        // unique per gene from depth 2 on).
        let distinct = if chain.len() == 1 {
            count_distinct_genes(members)
        } else {
            members.len()
        };
        observer.node_entered(chain, n_fwd, n_bwd);

        // Query mining: every cluster of this subtree lacks the required
        // gene once it has left the member set.
        if let Some(g) = required {
            if !members.iter().any(|m| m.gene == g) {
                return false;
            }
        }
        // Pruning (1): MinG — except at level 1, where the member set was
        // filtered solely by the max-chain tables (`root_members_into`
        // admits a gene iff MinC is reachable from the root), so a starved
        // root is a rule-2 cut: no MinC-chain can start here.
        if distinct < self.params.min_genes {
            let rule = if chain.len() == 1 {
                PruneRule::MinConds
            } else {
                PruneRule::MinGenes
            };
            observer.pruned(chain, rule);
            return false;
        }
        // Pruning (3)(a): too few p-members to ever be representative.
        if 2 * n_fwd < self.params.min_genes {
            observer.pruned(chain, PruneRule::FewPMembers);
            return false;
        }

        // Step 3 of Figure 5: output a validated representative chain. The
        // member lists are staged in scratch and handed over as a borrowed
        // view — only a fresh emission materializes an owned cluster.
        if chain.len() >= self.params.min_conds
            && (n_fwd > n_bwd || (n_fwd == n_bwd && chain[0] < chain[1]))
        {
            p_genes.clear();
            n_genes.clear();
            for m in members {
                match m.dir {
                    Dir::Fwd => p_genes.push(m.gene),
                    Dir::Bwd => n_genes.push(m.gene),
                }
            }
            p_genes.sort_unstable();
            n_genes.sort_unstable();
            merge_sorted_into(p_genes, n_genes, genes);
            let view = ClusterView {
                chain: chain.as_slice(),
                p_members: p_genes.as_slice(),
                n_members: n_genes.as_slice(),
                genes: genes.as_slice(),
            };
            match try_emit(&view, &mut *observer) {
                EmitOutcome::Duplicate => {
                    observer.pruned(chain, PruneRule::Duplicate);
                    return false;
                }
                EmitOutcome::Fresh => {}
                EmitOutcome::FreshAndStop => return true,
            }
        }

        // Step 4: candidate regulation successors, scanned from p-members
        // only, with per-gene MinC pruning (2). `need` is the minimum
        // max-chain length a candidate must support: the chain grows to
        // `len + 1` conditions and must be extensible to `MinC`.
        //
        // A member's candidates are always a rank *range* of its model —
        // `[successor_start(r_last), fwd_cutoff(need))` — because the
        // regulated successors of a rank form a rank suffix (Lemma 3.1)
        // and the max-chain table is monotone in rank. The range is ORed
        // into the packed candidate bitset word-parallel
        // (`suffix(lo) & !suffix(hi)` per lane; see [`HotTables`]), and
        // the same `[lo, hi)` bounds are cached per member as its
        // qualification context for step 5 — by the proven pointer/value
        // equivalence of `rwave.rs`, `lo ≤ rank(c) < hi` is bit-for-bit
        // the old direction + regulation + max-chain test.
        let last = *chain.last().expect("chain is never empty here");
        let need = self.params.min_conds.saturating_sub(chain.len());
        let n_conds = self.matrix.n_conditions();
        let t = &self.tables;
        let need_idx = t.need_index(need);
        cand.prepare(n_conds);
        cand.clear();
        ctx.clear();
        for m in members {
            let r_last = t.rank_of(m.gene, last);
            let (lo, hi) = match m.dir {
                Dir::Fwd => {
                    let (lo, hi) = t.fwd_range(m.gene, r_last, need_idx);
                    t.accumulate_candidates(m.gene, lo, hi, cand);
                    (lo, hi)
                }
                Dir::Bwd => t.bwd_range(m.gene, r_last, need_idx),
            };
            ctx.push(MemberCtx {
                lo,
                hi,
                base: self.matrix.row(m.gene)[last],
            });
        }
        if !cand.any() {
            // Pruning (2): no candidate keeps the chain extensible to MinC,
            // so the max-chain tables cut the subtree below a still-short
            // chain. A chain already at ≥ MinC conditions has simply been
            // exhausted — that is completion, not a prune.
            if chain.len() < self.params.min_conds {
                observer.pruned(chain, PruneRule::MinConds);
            }
            return false;
        }

        // Step 5: for each candidate, select matching genes, apply the
        // coherence sliding window, and make every validated window a child
        // (a flat member range in `children` — no per-child `Vec`).
        //
        // Instead of testing every member against every candidate (a
        // members × candidates random gather), the qualified pairs are
        // bucketed by candidate condition with a two-pass counting sort
        // over each member's qualifying rank range — sequential SoA walks
        // costing O(qualified pairs). A member qualifies for exactly the
        // conditions at ranks `[lo, hi)` of its model, so walking
        // `conds_in_range` enumerates its pairs directly; within a bucket,
        // members land in member order (pass 2 iterates members in order,
        // one pair per member per condition), which is the order the old
        // per-candidate scan produced — so the downstream sort, windows,
        // and children are bit-identical.
        //
        // Forward ranges are subsets of the candidate mask by
        // construction; backward ranges may cover non-candidate conditions
        // (no p-member proposed them), which the old sweep never visited —
        // the packed-bitset membership test filters them in O(1).
        counts.resize(counts.len().max(n_conds), 0);
        offsets.resize(offsets.len().max(n_conds + 1), 0);
        let counts = &mut counts[..n_conds];
        counts.fill(0);
        for (m, cx) in members.iter().zip(ctx.iter()) {
            match m.dir {
                Dir::Fwd => {
                    for &c in t.conds_in_range(m.gene, cx.lo, cx.hi) {
                        counts[c as usize] += 1;
                    }
                }
                Dir::Bwd => {
                    for &c in t.conds_in_range(m.gene, cx.lo, cx.hi) {
                        counts[c as usize] += cand.contains(c as usize) as u32;
                    }
                }
            }
        }
        let mut total = 0u32;
        for (c, &n) in counts.iter().enumerate() {
            offsets[c] = total;
            total += n;
        }
        offsets[n_conds] = total;
        let total = total as usize;
        const DUMMY: Member = Member {
            gene: 0,
            dir: Dir::Fwd,
            denom: 0.0,
        };

        if chain.len() == 1 {
            // Depth-1 fast path: every score is 1.0 by definition (the
            // appended condition forms the baseline pair with the root), so
            // no window pass runs and every candidate becomes one child
            // whose members are its whole bucket. Pass 2 therefore writes
            // members straight into the child arena at their bucket slots —
            // no intermediate score/member arenas, no per-child copy.
            children.members.resize(total, DUMMY);
            counts.copy_from_slice(&offsets[..n_conds]);
            for (m, cx) in members.iter().zip(ctx.iter()) {
                let row = self.matrix.row(m.gene);
                for &c in t.conds_in_range(m.gene, cx.lo, cx.hi) {
                    let c = c as usize;
                    if m.dir == Dir::Bwd && !cand.contains(c) {
                        continue;
                    }
                    let slot = counts[c] as usize;
                    counts[c] += 1;
                    let mut next = *m;
                    // This step becomes the baseline pair (c_{k1}, c_{k2}).
                    next.denom = row[c] - cx.base;
                    children.members[slot] = next;
                }
            }
            // Bit-scanning the packed words visits candidates in ascending
            // condition order — the order the old per-condition sweep used.
            cand.for_each(|c_i| {
                children.index.push(crate::scratch::ChildNode {
                    cond: c_i,
                    start: offsets[c_i],
                    len: offsets[c_i + 1] - offsets[c_i],
                });
            });
            return false;
        }

        // Pass 2: `counts` becomes the per-bucket write cursor. Members and
        // raw steps land struct-of-arrays so the division pass below
        // streams a plain `f64` lane.
        mem.resize(mem.len().max(total), DUMMY);
        scores.resize(scores.len().max(total), 0.0);
        counts.copy_from_slice(&offsets[..n_conds]);
        for (m, cx) in members.iter().zip(ctx.iter()) {
            let row = self.matrix.row(m.gene);
            for &c in t.conds_in_range(m.gene, cx.lo, cx.hi) {
                let c = c as usize;
                if m.dir == Dir::Bwd && !cand.contains(c) {
                    continue;
                }
                let slot = counts[c] as usize;
                counts[c] += 1;
                mem[slot] = *m;
                scores[slot] = row[c] - cx.base;
            }
        }
        // H-scores in one dependency-free elementwise pass over the whole
        // arena (the same IEEE divisions, in the same bucket-major order,
        // the old per-candidate code performed).
        for (s, m) in scores[..total].iter_mut().zip(mem[..total].iter()) {
            *s /= m.denom;
        }
        // Bit-scanning the packed words visits candidates in ascending
        // condition order — the order the old per-condition sweep used.
        for (w_idx, &word) in cand.words().iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let c_i = w_idx * crate::bitset::WORD_BITS + w.trailing_zeros() as usize;
                w &= w - 1;
                let o0 = offsets[c_i] as usize;
                let o1 = offsets[c_i + 1] as usize;
                if o1 - o0 < self.params.min_genes {
                    // Pruning (1) fires before the coherence test when the
                    // candidate's gene set is already below MinG.
                    chain.push(c_i);
                    observer.pruned(chain, PruneRule::MinGenes);
                    chain.pop();
                    continue;
                }
                // Sort compact (score, bucket-index) keys — half the bytes
                // of moving the members themselves — and gather members
                // through the index when emitting windows. Unstable sort:
                // no allocation, and neither window membership nor emitted
                // output is sensitive to the order of tied scores (a run of
                // equal scores never straddles a maximal-window boundary,
                // and emission sorts member genes by id).
                keys.clear();
                keys.extend(
                    scores[o0..o1]
                        .iter()
                        .enumerate()
                        .map(|(i, &s)| (s, i as u32)),
                );
                keys.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
                hs.clear();
                hs.extend(keys.iter().map(|&(h, _)| h));
                maximal_windows_into(hs, self.params.epsilon, self.params.min_genes, windows);
                if windows.is_empty() {
                    // Pruning (4): no coherent interval of MinG genes.
                    chain.push(c_i);
                    observer.pruned(chain, PruneRule::Coherence);
                    chain.pop();
                    continue;
                }
                for &(s, e) in windows.iter() {
                    children.push(c_i, keys[s..e].iter().map(|&(_, i)| mem[o0 + i as usize]));
                }
            }
        }
        false
    }
}

fn count_distinct_genes(members: &[Member]) -> usize {
    let mut distinct = 0;
    let mut prev = usize::MAX;
    for m in members {
        if m.gene != prev {
            distinct += 1;
            prev = m.gene;
        }
    }
    distinct
}

/// Merges two sorted, disjoint gene lists into `out` (cleared first).
fn merge_sorted_into(a: &[GeneId], b: &[GeneId], out: &mut Vec<GeneId>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Canonical ordering + optional maximal-only post-filter + `max_clusters`
/// truncation, shared by the sequential and parallel drivers. Because the cap
/// is applied to the canonically-sorted full result, capped output is a
/// deterministic function of the cluster *set* — which is why sequential and
/// work-stealing parallel runs agree bit-for-bit even under `max_clusters`.
pub(crate) fn finalize(out: &mut Vec<RegCluster>, params: &MiningParams) {
    if params.maximal_only {
        let snapshot = out.clone();
        out.retain(|c| {
            !snapshot
                .iter()
                .any(|other| other != c && c.is_subcluster_of(other))
        });
    }
    // Unstable sort: keys are unique (duplicate clusters were eliminated
    // during enumeration), so stability buys nothing — and the stable sort's
    // scratch buffer would be the run's one avoidable allocation.
    out.sort_unstable_by(|a, b| {
        a.chain
            .cmp(&b.chain)
            .then_with(|| a.p_members.cmp(&b.p_members))
            .then_with(|| a.n_members.cmp(&b.n_members))
    });
    if let Some(cap) = params.max_clusters {
        out.truncate(cap);
    }
}

/// Canonicalizes a raw emission set the way the collect path does:
/// `maximal_only` post-filter, canonical sort (chain, then members), then the
/// `max_clusters` truncation. Sink-mode consumers ([`mine_to_sink`]
/// delivers clusters unfinalized, in nondeterministic order) call this to
/// obtain output bit-identical to [`mine`] / [`mine_engine`] for a complete
/// run.
///
/// [`mine_to_sink`]: crate::engine::mine_to_sink
/// [`mine_engine`]: crate::engine::mine_engine
pub fn finalize_clusters(clusters: &mut Vec<RegCluster>, params: &MiningParams) {
    finalize(clusters, params);
}

/// Mines all reg-clusters of `matrix` under `params`.
///
/// Output clusters satisfy Definition 3.2 with respect to `γ` and `ε` and
/// are at least `MinG × MinC` in size; each is the maximal coherent gene
/// window for its representative chain. The result is sorted canonically.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] for invalid parameters.
pub fn mine(
    matrix: &ExpressionMatrix,
    params: &MiningParams,
) -> Result<Vec<RegCluster>, CoreError> {
    mine_with_observer(matrix, params, &mut NoopObserver)
}

/// Like [`mine`], reporting enumeration-tree events to `observer`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] for invalid parameters.
pub fn mine_with_observer(
    matrix: &ExpressionMatrix,
    params: &MiningParams,
    observer: &mut dyn MineObserver,
) -> Result<Vec<RegCluster>, CoreError> {
    let miner = Miner::new(matrix, params)?;
    Ok(miner.mine_all(observer))
}

/// Mines only the reg-clusters containing `gene` (query mining), pruning
/// subtrees that lose the gene. Equivalent to filtering [`mine`]'s output.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] for invalid parameters or an
/// out-of-range gene id.
pub fn mine_containing(
    matrix: &ExpressionMatrix,
    params: &MiningParams,
    gene: GeneId,
) -> Result<Vec<RegCluster>, CoreError> {
    if gene >= matrix.n_genes() {
        return Err(CoreError::InvalidParams(format!(
            "gene {gene} out of range (matrix has {} genes)",
            matrix.n_genes()
        )));
    }
    let miner = Miner::new(matrix, params)?;
    Ok(miner.mine_containing(gene, &mut NoopObserver))
}

/// Mines with the enumeration tree shared across `n_threads` worker threads
/// through the work-stealing [`engine`](crate::engine).
///
/// Workers split subtrees at any depth (not just at the roots), so a single
/// heavy root no longer serializes the run. The merged result is
/// **bit-identical** to [`mine`]'s — including under `max_clusters` — and
/// worker panics surface as [`CoreError::WorkerPanic`] instead of aborting
/// the process (asserted by tests).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] for invalid parameters or a zero
/// thread count, and [`CoreError::WorkerPanic`] if a worker panicked.
pub fn mine_parallel(
    matrix: &ExpressionMatrix,
    params: &MiningParams,
    n_threads: usize,
) -> Result<Vec<RegCluster>, CoreError> {
    let config = crate::engine::EngineConfig::new(n_threads);
    let report = crate::engine::mine_engine(matrix, params, &config)?;
    Ok(report.clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{PruneRule, TraceObserver};

    /// Table 1 of the paper.
    pub(crate) fn running_example() -> ExpressionMatrix {
        ExpressionMatrix::from_rows(
            vec!["g1".into(), "g2".into(), "g3".into()],
            (1..=10).map(|i| format!("c{i}")).collect(),
            vec![
                vec![10.0, -14.5, 15.0, 10.5, 0.0, 14.5, -15.0, 0.0, -5.0, -5.0],
                vec![20.0, 15.0, 15.0, 43.5, 30.0, 44.0, 45.0, 43.0, 35.0, 20.0],
                vec![6.0, -3.8, 8.0, 6.2, 2.0, 7.8, -4.0, 2.0, 0.0, 0.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn running_example_yields_the_papers_cluster() {
        let m = running_example();
        let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
        let clusters = mine(&m, &params).unwrap();
        assert_eq!(clusters.len(), 1);
        let c = &clusters[0];
        // c7 ↰ c9 ↰ c5 ↰ c1 ↰ c3 (0-based condition ids 6, 8, 4, 0, 2).
        assert_eq!(c.chain, vec![6, 8, 4, 0, 2]);
        assert_eq!(c.p_members, vec![0, 2]); // g1, g3
        assert_eq!(c.n_members, vec![1]); // g2
        c.validate(&m, &params).unwrap();
    }

    #[test]
    fn enumeration_tree_matches_figure_6() {
        let m = running_example();
        let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
        let mut trace = TraceObserver::default();
        let clusters = mine_with_observer(&m, &params, &mut trace).unwrap();
        assert_eq!(clusters.len(), 1);

        // Level-1 survivors: only c2, c3, c7 (ids 1, 2, 6) proceed past the
        // root prunings; c3 falls to (3)(a) with a single p-member.
        let few_p = trace.pruned_by(PruneRule::FewPMembers);
        assert!(
            few_p.contains(&&[2usize][..]),
            "c3 pruned by (3)(a): {few_p:?}"
        );

        // c2's subtree: c2c1 and c2c9 die to MinG pruning (1); c2c10c8 too.
        let min_g = trace.pruned_by(PruneRule::MinGenes);
        assert!(
            min_g.contains(&&[1usize, 0][..]),
            "c2c1 pruned by (1): {min_g:?}"
        );
        assert!(
            min_g.contains(&&[1usize, 8][..]),
            "c2c9 pruned by (1): {min_g:?}"
        );
        assert!(
            min_g.contains(&&[1usize, 9, 7][..]),
            "c2c10c8 pruned by (1): {min_g:?}"
        );
        // c7c10 dies to MinG pruning as well.
        assert!(
            min_g.contains(&&[6usize, 9][..]),
            "c7c10 pruned by (1): {min_g:?}"
        );

        // c2c10c5 dies to coherence pruning (4): H(g2) = 2 vs 0.5263.
        let coh = trace.pruned_by(PruneRule::Coherence);
        assert!(
            coh.contains(&&[1usize, 9, 4][..]),
            "c2c10c5 pruned by (4): {coh:?}"
        );

        // The explored interior nodes include exactly the paper's path
        // c7 → c7c9 → c7c9c5 → c7c9c5c1 → c7c9c5c1c3.
        let nodes = trace.nodes();
        for prefix in [
            &[6usize][..],
            &[6, 8][..],
            &[6, 8, 4][..],
            &[6, 8, 4, 0][..],
            &[6, 8, 4, 0, 2][..],
        ] {
            assert!(nodes.contains(&prefix), "missing node {prefix:?}");
        }
        assert_eq!(trace.n_emitted(), 1);
    }

    #[test]
    fn gamma_zero_on_running_example_still_finds_superset() {
        // With γ = 0 every strict change is a regulation; the paper's chain
        // must still be found (possibly among more clusters).
        let m = running_example();
        let params = MiningParams::new(3, 5, 0.0, 0.1).unwrap();
        let clusters = mine(&m, &params).unwrap();
        assert!(clusters
            .iter()
            .any(|c| c.chain == vec![6, 8, 4, 0, 2] && c.n_members == vec![1]));
        for c in &clusters {
            c.validate(&m, &params).unwrap();
        }
    }

    #[test]
    fn stricter_epsilon_excludes_nothing_here_but_stricter_gamma_does() {
        let m = running_example();
        // The three genes agree exactly, so ε = 0 still finds the cluster.
        let params = MiningParams::new(3, 5, 0.15, 0.0).unwrap();
        let clusters = mine(&m, &params).unwrap();
        assert_eq!(clusters.len(), 1);
        // γ = 0.2 breaks the 5-unit steps of g1 (γ_1 = 6): nothing survives.
        let params = MiningParams::new(3, 5, 0.2, 0.1).unwrap();
        assert!(mine(&m, &params).unwrap().is_empty());
    }

    #[test]
    fn min_conds_six_finds_nothing_on_running_example() {
        let m = running_example();
        let params = MiningParams::new(3, 6, 0.15, 0.1).unwrap();
        assert!(mine(&m, &params).unwrap().is_empty());
    }

    #[test]
    fn min_genes_two_splits_into_pairs() {
        let m = running_example();
        let params = MiningParams::new(2, 5, 0.15, 0.1).unwrap();
        let clusters = mine(&m, &params).unwrap();
        // The 3-gene cluster is still found; with MinG = 2 additional
        // chains (and the g1–g3-only windows) may appear. All must validate.
        assert!(clusters
            .iter()
            .any(|c| c.p_members == vec![0, 2] && c.n_members == vec![1]));
        for c in &clusters {
            c.validate(&m, &params).unwrap();
        }
    }

    #[test]
    fn every_output_cluster_validates() {
        let m = running_example();
        for (min_g, min_c, gamma, eps) in [
            (2, 3, 0.1, 0.2),
            (2, 4, 0.05, 0.5),
            (3, 3, 0.15, 1.0),
            (2, 2, 0.0, 0.0),
        ] {
            let params = MiningParams::new(min_g, min_c, gamma, eps).unwrap();
            for c in mine(&m, &params).unwrap() {
                c.validate(&m, &params)
                    .unwrap_or_else(|e| panic!("invalid cluster {c:?} under {params:?}: {e}"));
            }
        }
    }

    #[test]
    fn no_duplicate_clusters_in_output() {
        let m = running_example();
        let params = MiningParams::new(2, 3, 0.1, 0.5).unwrap();
        let clusters = mine(&m, &params).unwrap();
        let mut keys: Vec<_> = clusters
            .iter()
            .map(|c| (c.chain.clone(), c.genes()))
            .collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(before, keys.len());
    }

    #[test]
    fn parallel_equals_sequential() {
        let m = running_example();
        for (min_g, min_c, gamma, eps) in [(3, 5, 0.15, 0.1), (2, 3, 0.05, 0.5), (2, 2, 0.0, 0.2)] {
            let params = MiningParams::new(min_g, min_c, gamma, eps).unwrap();
            let seq = mine(&m, &params).unwrap();
            for threads in [1, 2, 4] {
                let par = mine_parallel(&m, &params, threads).unwrap();
                assert_eq!(seq, par, "threads={threads} params={params:?}");
            }
        }
    }

    #[test]
    fn parallel_rejects_zero_threads() {
        let m = running_example();
        let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
        assert!(mine_parallel(&m, &params, 0).is_err());
    }

    #[test]
    fn max_clusters_caps_output() {
        let m = running_example();
        let params = MiningParams::new(2, 3, 0.1, 0.5).unwrap();
        let all = mine(&m, &params).unwrap();
        assert!(all.len() > 1, "need multiple clusters for this test");
        let capped_params = params.clone().with_max_clusters(1);
        let capped = mine(&m, &capped_params).unwrap();
        assert_eq!(capped.len(), 1);
    }

    #[test]
    fn maximal_only_removes_contained_clusters() {
        let m = running_example();
        let params = MiningParams::new(2, 3, 0.1, 0.5).unwrap();
        let all = mine(&m, &params).unwrap();
        let maximal_params = params.clone().with_maximal_only();
        let maximal = mine(&m, &maximal_params).unwrap();
        assert!(maximal.len() <= all.len());
        for c in &maximal {
            assert!(!maximal.iter().any(|o| o != c && c.is_subcluster_of(o)));
        }
        // Every dropped cluster is contained in some maximal one.
        for c in &all {
            assert!(
                maximal.contains(c) || maximal.iter().any(|o| c.is_subcluster_of(o)),
                "dropped cluster {c:?} not contained in any survivor"
            );
        }
    }

    #[test]
    fn overlapping_windows_trigger_duplicate_pruning() {
        // Engineered so that two overlapping ε-windows at the second chain
        // step converge to the identical cluster one step later, firing
        // pruning (3)(b). H-scores at step c1→c2 are [0.4, 0.8, 0.8, 1.2]
        // (windows {g0,g1,g2} and {g1,g2,g3} at ε = 0.4); at step c2→c3
        // g0 (H = 3.0) and g3 (H = 0.4) each fall out of their branch's
        // window, leaving {g1, g2} twice.
        let m = ExpressionMatrix::from_flat_unlabeled(
            4,
            4,
            vec![
                0.0, 10.0, 14.0, 44.0, //
                0.0, 10.0, 18.0, 28.0, //
                0.0, 10.0, 18.0, 28.0, //
                0.0, 10.0, 22.0, 26.0,
            ],
        )
        .unwrap();
        let params = MiningParams::new(2, 4, 0.0, 0.4)
            .unwrap()
            .with_threshold(crate::RegulationThreshold::Absolute(2.0))
            .unwrap();
        let mut trace = TraceObserver::default();
        let clusters = mine_with_observer(&m, &params, &mut trace).unwrap();
        assert!(
            !trace.pruned_by(PruneRule::Duplicate).is_empty(),
            "duplicate pruning should fire: {:?}",
            trace.events
        );
        // The duplicated cluster is reported exactly once.
        let hits: Vec<_> = clusters
            .iter()
            .filter(|c| c.chain == vec![0, 1, 2, 3] && c.genes() == vec![1, 2])
            .collect();
        assert_eq!(hits.len(), 1, "{clusters:?}");
        for c in &clusters {
            c.validate(&m, &params).unwrap();
        }
    }

    #[test]
    fn mine_containing_equals_filtered_full_mine() {
        let m = running_example();
        for (min_g, min_c, gamma, eps) in [(3, 5, 0.15, 0.1), (2, 3, 0.05, 0.5), (2, 2, 0.0, 0.2)] {
            let params = MiningParams::new(min_g, min_c, gamma, eps).unwrap();
            let all = mine(&m, &params).unwrap();
            for gene in 0..m.n_genes() {
                let queried = mine_containing(&m, &params, gene).unwrap();
                let filtered: Vec<RegCluster> = all
                    .iter()
                    .filter(|c| c.genes().binary_search(&gene).is_ok())
                    .cloned()
                    .collect();
                assert_eq!(queried, filtered, "gene {gene} under {params:?}");
            }
        }
    }

    #[test]
    fn mine_containing_rejects_out_of_range_gene() {
        let m = running_example();
        let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
        assert!(mine_containing(&m, &params, 99).is_err());
    }

    #[test]
    fn duplicate_gene_profiles_cluster_together() {
        // Identical rows are perfect shifting images (s1 = 1, s2 = 0) and
        // must all land in one cluster.
        let base = [0.0, 2.0, 4.0, 6.0];
        let mut values = Vec::new();
        for _ in 0..4 {
            values.extend(base.iter().copied());
        }
        let m = ExpressionMatrix::from_flat_unlabeled(4, 4, values).unwrap();
        let params = MiningParams::new(4, 4, 0.1, 0.0).unwrap();
        let clusters = mine(&m, &params).unwrap();
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].p_members, vec![0, 1, 2, 3]);
        clusters[0].validate(&m, &params).unwrap();
    }

    #[test]
    fn two_condition_matrix_minimal_chains() {
        // MinC = 2 on a 2-condition matrix: chains are single regulated
        // pairs; both orientations resolve through the tie-break.
        let m = ExpressionMatrix::from_flat_unlabeled(3, 2, vec![0.0, 5.0, 1.0, 7.0, 9.0, 2.0])
            .unwrap();
        let params = MiningParams::new(2, 2, 0.1, 10.0).unwrap();
        let clusters = mine(&m, &params).unwrap();
        for c in &clusters {
            c.validate(&m, &params).unwrap();
            assert_eq!(c.n_conditions(), 2);
        }
        // g0 and g1 rise c0→c1, g2 falls: the majority chain is [0, 1].
        assert!(clusters
            .iter()
            .any(|c| c.chain == vec![0, 1] && c.p_members == vec![0, 1]));
    }

    #[test]
    fn gamma_one_requires_full_range_steps() {
        // γ = 1.0 makes γ_i the entire range: no strict step can exceed it,
        // so nothing is ever regulated.
        let m = ExpressionMatrix::from_flat_unlabeled(
            3,
            4,
            vec![0.0, 1.0, 2.0, 3.0, 0.0, 2.0, 4.0, 6.0, 1.0, 5.0, 2.0, 8.0],
        )
        .unwrap();
        let params = MiningParams::new(2, 2, 1.0, 1.0).unwrap();
        assert!(mine(&m, &params).unwrap().is_empty());
    }

    #[test]
    fn all_negative_values_are_handled() {
        let base: Vec<f64> = vec![-9.0, -7.0, -4.0, -1.0];
        let mut values = Vec::new();
        for k in 1..=3 {
            values.extend(base.iter().map(|v| v * k as f64 / 3.0 - 1.0));
        }
        let m = ExpressionMatrix::from_flat_unlabeled(3, 4, values).unwrap();
        let params = MiningParams::new(3, 4, 0.1, 0.01).unwrap();
        let clusters = mine(&m, &params).unwrap();
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].n_genes(), 3);
        clusters[0].validate(&m, &params).unwrap();
    }

    #[test]
    fn flat_matrix_produces_nothing() {
        let m = ExpressionMatrix::from_flat_unlabeled(4, 6, vec![1.0; 24]).unwrap();
        let params = MiningParams::new(2, 2, 0.1, 0.5).unwrap();
        assert!(mine(&m, &params).unwrap().is_empty());
    }

    #[test]
    fn perfect_negative_pair_clusters_together() {
        // g0 rises 0,2,4,6; g1 = -g0 falls. A 2-gene cluster over the full
        // chain exists with one p-member and one n-member — but a tie means
        // representativeness needs chain[0] < chain[1].
        let m = ExpressionMatrix::from_flat_unlabeled(
            2,
            4,
            vec![0.0, 2.0, 4.0, 6.0, 0.0, -2.0, -4.0, -6.0],
        )
        .unwrap();
        let params = MiningParams::new(2, 4, 0.1, 0.01).unwrap();
        let clusters = mine(&m, &params).unwrap();
        assert_eq!(clusters.len(), 1);
        let c = &clusters[0];
        assert_eq!(c.chain, vec![0, 1, 2, 3]);
        assert_eq!(c.p_members, vec![0]);
        assert_eq!(c.n_members, vec![1]);
        c.validate(&m, &params).unwrap();
    }

    #[test]
    fn shifting_and_scaling_family_clusters_fully() {
        // Five genes, all affine images (positive and negative scalings) of
        // one base profile with strong steps.
        let base = [0.0, 1.0, 2.5, 4.0, 6.0];
        let transforms: [(f64, f64); 5] = [
            (1.0, 0.0),
            (2.0, 3.0),
            (0.5, -1.0),
            (-1.5, 2.0),
            (-3.0, 0.0),
        ];
        let rows: Vec<Vec<f64>> = transforms
            .iter()
            .map(|&(s1, s2)| base.iter().map(|&v| s1 * v + s2).collect())
            .collect();
        let genes = (0..5).map(|i| format!("g{i}")).collect();
        let conds = (0..5).map(|i| format!("c{i}")).collect();
        let m = ExpressionMatrix::from_rows(genes, conds, rows).unwrap();
        let params = MiningParams::new(5, 5, 0.15, 1e-9).unwrap();
        let clusters = mine(&m, &params).unwrap();
        assert_eq!(clusters.len(), 1);
        let c = &clusters[0];
        assert_eq!(c.chain, vec![0, 1, 2, 3, 4]);
        assert_eq!(c.p_members, vec![0, 1, 2]);
        assert_eq!(c.n_members, vec![3, 4]);
        c.validate(&m, &params).unwrap();
    }

    #[test]
    fn outlier_gene_is_excluded_by_coherence() {
        // Four coherent genes plus one with the right tendency but wrong
        // ratios (the Figure 4 situation).
        let base = [0.0, 2.0, 4.0, 6.0];
        let mut rows: Vec<Vec<f64>> = (0..4)
            .map(|i| base.iter().map(|&v| (i as f64 + 1.0) * v).collect())
            .collect();
        rows.push(vec![0.0, 5.0, 8.0, 11.0]); // same order, regulated, incoherent steps
        let genes = (0..5).map(|i| format!("g{i}")).collect();
        let conds = (0..4).map(|i| format!("c{i}")).collect();
        let m = ExpressionMatrix::from_rows(genes, conds, rows).unwrap();
        let params = MiningParams::new(4, 4, 0.15, 0.01).unwrap();
        let clusters = mine(&m, &params).unwrap();
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].p_members, vec![0, 1, 2, 3]);
        assert!(clusters[0].n_members.is_empty());
    }
}
