//! Missing-value imputation.
//!
//! Microarray matrices routinely contain holes (failed spots, filtered
//! measurements). The mining algorithms in this workspace require complete
//! matrices, so a [`RaggedMatrix`] must be imputed
//! first. Three standard strategies are provided; row-mean imputation is what
//! Cheng & Church used for the yeast benchmark.

use crate::io::RaggedMatrix;
use crate::{ExpressionMatrix, MatrixError};

/// How to fill missing cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Imputation {
    /// Replace each hole with the mean of the present values in its row
    /// (gene). Falls back to the global mean for all-missing rows.
    RowMean,
    /// Replace each hole with the mean of the present values in its column
    /// (condition). Falls back to the global mean for all-missing columns.
    ColumnMean,
    /// Replace every hole with a fixed constant.
    Constant(f64),
}

/// Fills the holes of `ragged` according to `strategy` and returns a complete
/// matrix.
///
/// # Errors
///
/// Returns an error if the matrix is empty, every cell is missing (so no mean
/// exists), or the constant is non-finite.
pub fn impute(
    ragged: &RaggedMatrix,
    strategy: Imputation,
) -> Result<ExpressionMatrix, MatrixError> {
    let n_conds = ragged.conditions.len();
    let n_genes = ragged.genes.len();
    if n_conds == 0 || n_genes == 0 {
        return Err(MatrixError::Empty);
    }

    let present: Vec<f64> = ragged.cells.iter().flatten().copied().collect();
    if present.is_empty() {
        return Err(MatrixError::Transform(
            "cannot impute an all-missing matrix".into(),
        ));
    }
    let global_mean = present.iter().sum::<f64>() / present.len() as f64;

    let mut values = Vec::with_capacity(ragged.cells.len());
    match strategy {
        Imputation::Constant(k) => {
            if !k.is_finite() {
                return Err(MatrixError::Transform(
                    "imputation constant must be finite".into(),
                ));
            }
            values.extend(ragged.cells.iter().map(|c| c.unwrap_or(k)));
        }
        Imputation::RowMean => {
            for g in 0..n_genes {
                let row = &ragged.cells[g * n_conds..(g + 1) * n_conds];
                let fill = mean_of(row.iter().copied()).unwrap_or(global_mean);
                values.extend(row.iter().map(|c| c.unwrap_or(fill)));
            }
        }
        Imputation::ColumnMean => {
            let mut col_fill = vec![global_mean; n_conds];
            for (c, fill) in col_fill.iter_mut().enumerate() {
                let col = (0..n_genes).map(|g| ragged.cells[g * n_conds + c]);
                if let Some(m) = mean_of(col) {
                    *fill = m;
                }
            }
            for g in 0..n_genes {
                for (c, fill) in col_fill.iter().enumerate() {
                    values.push(ragged.cells[g * n_conds + c].unwrap_or(*fill));
                }
            }
        }
    }

    ExpressionMatrix::from_flat(ragged.genes.clone(), ragged.conditions.clone(), values)
}

fn mean_of(cells: impl Iterator<Item = Option<f64>>) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in cells.flatten() {
        sum += v;
        n += 1;
    }
    (n > 0).then(|| sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ragged() -> RaggedMatrix {
        // g0: [1, _, 3]   g1: [_, 4, _]
        RaggedMatrix {
            genes: vec!["g0".into(), "g1".into()],
            conditions: vec!["c0".into(), "c1".into(), "c2".into()],
            cells: vec![Some(1.0), None, Some(3.0), None, Some(4.0), None],
        }
    }

    #[test]
    fn row_mean_uses_gene_average() {
        let m = impute(&ragged(), Imputation::RowMean).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 4.0, 4.0]);
    }

    #[test]
    fn column_mean_uses_condition_average() {
        let m = impute(&ragged(), Imputation::ColumnMean).unwrap();
        // c0 mean = 1, c1 mean = 4, c2 mean = 3.
        assert_eq!(m.row(0), &[1.0, 4.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 4.0, 3.0]);
    }

    #[test]
    fn constant_fills_everywhere() {
        let m = impute(&ragged(), Imputation::Constant(-1.0)).unwrap();
        assert_eq!(m.row(0), &[1.0, -1.0, 3.0]);
        assert_eq!(m.row(1), &[-1.0, 4.0, -1.0]);
    }

    #[test]
    fn all_missing_row_falls_back_to_global_mean() {
        let r = RaggedMatrix {
            genes: vec!["g0".into(), "g1".into()],
            conditions: vec!["c0".into()],
            cells: vec![None, Some(6.0)],
        };
        let m = impute(&r, Imputation::RowMean).unwrap();
        assert_eq!(m.value(0, 0), 6.0);
    }

    #[test]
    fn rejects_all_missing_matrix() {
        let r = RaggedMatrix {
            genes: vec!["g0".into()],
            conditions: vec!["c0".into()],
            cells: vec![None],
        };
        assert!(impute(&r, Imputation::RowMean).is_err());
    }

    #[test]
    fn rejects_non_finite_constant() {
        assert!(impute(&ragged(), Imputation::Constant(f64::NAN)).is_err());
    }

    #[test]
    fn complete_matrix_is_unchanged() {
        let r = RaggedMatrix {
            genes: vec!["g0".into()],
            conditions: vec!["c0".into(), "c1".into()],
            cells: vec![Some(1.0), Some(2.0)],
        };
        let m = impute(&r, Imputation::RowMean).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }
}
