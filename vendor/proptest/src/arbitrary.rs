//! The `any::<T>()` entry point for types with a canonical strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a default full-domain strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// See [`Arbitrary`] for `bool`.
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.0.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

macro_rules! impl_arbitrary_full_range {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;

            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_full_range!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);
