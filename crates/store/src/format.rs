//! The `.rcs` on-disk layout: header, section table, checksums, and the
//! bounds-checked little-endian readers shared by the writer and reader.
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────┐
//! │ header (32 B)                                              │
//! │   0..8   magic  b"RCSTORE\0"                               │
//! │   8..12  format version (u32 LE)                           │
//! │  12..16  section count  (u32 LE)                           │
//! │  16..24  section-table offset (u64 LE)                     │
//! │  24..32  section-table checksum (FNV-1a 64, u64 LE)        │
//! ├────────────────────────────────────────────────────────────┤
//! │ CLUSTERS section: packed records, streamed during mining   │
//! │   record: chain_len, p_len, n_len (u32 LE each),           │
//! │           then chain / p_members / n_members as u32 LE     │
//! ├────────────────────────────────────────────────────────────┤
//! │ OFFSETS    n_clusters × u64 — record offsets in canonical  │
//! │            (chain, p_members, n_members) order; the index  │
//! │            into this table IS the cluster id               │
//! │ SIZES      n_clusters × (genes u32, conds u32)             │
//! │ GENE_INDEX CSR: (n_genes+1) × u32 starts, then postings    │
//! │ COND_INDEX CSR: (n_conds+1) × u32 starts, then postings    │
//! │ META       n_genes, n_conds, n_clusters (u64 each),        │
//! │            then mining-params JSON (γ/ε provenance)        │
//! │ GENE_DICT  count u32, then per name: len u32 + UTF-8 bytes │
//! │ COND_DICT  same                                            │
//! ├────────────────────────────────────────────────────────────┤
//! │ section table: count × 32 B                                │
//! │   { id u32, reserved u32, offset u64, len u64, fnv64 u64 } │
//! └────────────────────────────────────────────────────────────┘
//! ```
//!
//! Every section payload carries an FNV-1a 64 checksum in the table; the
//! table itself is checksummed from the header. A flipped bit anywhere in
//! the file is therefore caught at [`open`](crate::ClusterStore::open)
//! before any query runs, and a truncated file fails the structural bounds
//! checks. All multi-byte integers are little-endian regardless of host.

use crate::error::StoreError;

/// File magic, first 8 bytes of every store.
pub const MAGIC: [u8; 8] = *b"RCSTORE\0";

/// The format version this build writes. Version 2 added generation and
/// fingerprint provenance keys to the META section's JSON.
pub const FORMAT_VERSION: u32 = 2;

/// The oldest format version this build still reads. Stores between
/// [`MIN_SUPPORTED_VERSION`] and [`FORMAT_VERSION`] are upgraded in memory
/// at open through the [`migrations`](crate::migrations) registry; the
/// file on disk is never rewritten.
pub const MIN_SUPPORTED_VERSION: u32 = 1;

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 32;

/// Length of one section-table entry in bytes.
pub const SECTION_ENTRY_LEN: usize = 32;

/// Section identifiers (the `id` field of a table entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionId {
    /// Packed cluster records, in arrival (stream) order.
    Clusters = 1,
    /// Canonically-ordered record offsets; index == cluster id.
    Offsets = 2,
    /// Per-cluster (n_genes, n_conds) pairs for index-only size filtering.
    Sizes = 3,
    /// Gene → cluster-ids inverted index (CSR).
    GeneIndex = 4,
    /// Condition → cluster-ids inverted index (CSR).
    CondIndex = 5,
    /// Dimensions + mining-parameter provenance.
    Meta = 6,
    /// Gene-name dictionary.
    GeneDict = 7,
    /// Condition-name dictionary.
    CondDict = 8,
}

impl SectionId {
    /// All sections a well-formed store must contain.
    pub const ALL: [SectionId; 8] = [
        SectionId::Clusters,
        SectionId::Offsets,
        SectionId::Sizes,
        SectionId::GeneIndex,
        SectionId::CondIndex,
        SectionId::Meta,
        SectionId::GeneDict,
        SectionId::CondDict,
    ];

    /// Human-readable name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            SectionId::Clusters => "clusters",
            SectionId::Offsets => "offsets",
            SectionId::Sizes => "sizes",
            SectionId::GeneIndex => "gene-index",
            SectionId::CondIndex => "cond-index",
            SectionId::Meta => "meta",
            SectionId::GeneDict => "gene-dict",
            SectionId::CondDict => "cond-dict",
        }
    }

    /// Parses a table-entry id.
    pub fn from_u32(v: u32) -> Option<Self> {
        Self::ALL.into_iter().find(|s| *s as u32 == v)
    }
}

/// One parsed section-table entry.
#[derive(Debug, Clone, Copy)]
pub struct Section {
    /// Which section this is.
    pub id: SectionId,
    /// Absolute byte offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a 64 checksum of the payload.
    pub checksum: u64,
}

/// Incremental FNV-1a 64 checksum. Not cryptographic — it guards against
/// corruption (truncation, flipped bits, partial writes), not adversaries.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET_BASIS)
    }

    /// Feeds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// One-shot convenience.
    pub fn hash(bytes: &[u8]) -> u64 {
        let mut f = Fnv64::new();
        f.update(bytes);
        f.finish()
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// A bounds-checked little-endian reader over a byte slice. Every decode in
/// the store goes through this type, so a truncated or size-lying file
/// surfaces as [`StoreError::Format`], never a panic or an out-of-bounds
/// read.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Context for error messages (which section is being decoded).
    what: &'static str,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, labelled `what` for error messages.
    pub fn new(buf: &'a [u8], what: &'static str) -> Self {
        ByteReader { buf, pos: 0, what }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Format(format!(
                "{}: truncated ({} bytes needed at offset {}, {} available)",
                self.what,
                n,
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u32` (little-endian).
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64` (little-endian).
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string (u32 length).
    pub fn string(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| {
            StoreError::Format(format!(
                "{}: dictionary entry is not valid UTF-8",
                self.what
            ))
        })
    }
}

/// Reads the `i`-th little-endian `u32` of a packed array slice, which the
/// caller has already bounds-checked to hold at least `i + 1` entries.
#[inline]
pub fn u32_at(buf: &[u8], i: usize) -> u32 {
    u32::from_le_bytes(buf[i * 4..i * 4 + 4].try_into().unwrap())
}

/// Reads the `i`-th little-endian `u64` of a packed array slice.
#[inline]
pub fn u64_at(buf: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap())
}

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(Fnv64::hash(b""), 0xcbf29ce484222325);
        assert_eq!(Fnv64::hash(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(Fnv64::hash(b"foobar"), 0x85944171f73967e8);
        // Incremental == one-shot.
        let mut f = Fnv64::new();
        f.update(b"foo");
        f.update(b"bar");
        assert_eq!(f.finish(), Fnv64::hash(b"foobar"));
    }

    #[test]
    fn byte_reader_is_bounds_checked() {
        let mut r = ByteReader::new(&[1, 0, 0, 0, 2], "test");
        assert_eq!(r.u32().unwrap(), 1);
        assert_eq!(r.remaining(), 1);
        let err = r.u32().unwrap_err();
        assert!(matches!(err, StoreError::Format(_)));
        assert!(err.to_string().contains("test"));
    }

    #[test]
    fn string_roundtrip_and_invalid_utf8() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 3);
        buf.extend_from_slice(b"abc");
        let mut r = ByteReader::new(&buf, "dict");
        assert_eq!(r.string().unwrap(), "abc");

        let mut bad = Vec::new();
        put_u32(&mut bad, 2);
        bad.extend_from_slice(&[0xff, 0xfe]);
        assert!(ByteReader::new(&bad, "dict").string().is_err());
    }

    #[test]
    fn section_ids_roundtrip() {
        for id in SectionId::ALL {
            assert_eq!(SectionId::from_u32(id as u32), Some(id));
            assert!(!id.name().is_empty());
        }
        assert_eq!(SectionId::from_u32(999), None);
    }
}
