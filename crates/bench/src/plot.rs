//! Minimal self-contained SVG line charts, so the experiment binaries can
//! regenerate the paper's *figures* (Figure 7 runtime curves, Figure 8
//! expression profiles) and not just their numbers. No drawing dependency:
//! the charts are hand-assembled SVG with linear axes, tick labels, a
//! legend, and optional dashed strokes (used for n-members, matching the
//! paper's solid/dashed convention).

/// One polyline of a chart.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` data points (at least one).
    pub points: Vec<(f64, f64)>,
    /// Render dashed (the paper's n-member style) instead of solid.
    pub dashed: bool,
}

impl Series {
    /// Solid series.
    pub fn solid(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
            dashed: false,
        }
    }

    /// Dashed series.
    pub fn dashed(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
            dashed: true,
        }
    }
}

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 440.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 170.0;
const MARGIN_T: f64 = 50.0;
const MARGIN_B: f64 = 55.0;
const PALETTE: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

fn nice_ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if hi <= lo {
        return vec![lo];
    }
    let raw_step = (hi - lo) / n as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    } * mag;
    let first = (lo / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = first;
    while t <= hi + step * 1e-9 {
        ticks.push(t);
        t += step;
    }
    ticks
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        let s = format!("{v:.2}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        format!("{v:.3}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders a line chart as a standalone SVG document.
///
/// # Panics
///
/// Panics if `series` is empty or any series has no points (a chart of
/// nothing is a caller bug).
pub fn line_chart(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    assert!(!series.is_empty(), "chart needs at least one series");
    assert!(
        series.iter().all(|s| !s.points.is_empty()),
        "series need points"
    );

    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in &s.points {
            x_lo = x_lo.min(x);
            x_hi = x_hi.max(x);
            y_lo = y_lo.min(y);
            y_hi = y_hi.max(y);
        }
    }
    if x_hi == x_lo {
        x_hi = x_lo + 1.0;
    }
    if y_hi == y_lo {
        y_hi = y_lo + 1.0;
    }
    // Pad the y range a little so lines do not hug the frame.
    let pad = (y_hi - y_lo) * 0.06;
    let (y_lo, y_hi) = (y_lo - pad, y_hi + pad);

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let sx = move |x: f64| MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w;
    let sy = move |y: f64| MARGIN_T + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h;

    let mut svg = String::new();
    svg.push_str(&format!(
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">
<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>
<text x="{:.1}" y="28" font-size="17" text-anchor="middle" font-weight="bold">{}</text>
"##,
        MARGIN_L + plot_w / 2.0,
        xml_escape(title)
    ));

    // Axes frame.
    svg.push_str(&format!(
        r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#333" stroke-width="1"/>
"##
    ));

    // Ticks and grid.
    for t in nice_ticks(x_lo, x_hi, 6) {
        let x = sx(t);
        svg.push_str(&format!(
            r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="#ddd"/>
<text x="{x:.1}" y="{:.1}" font-size="12" text-anchor="middle">{}</text>
"##,
            MARGIN_T,
            MARGIN_T + plot_h,
            MARGIN_T + plot_h + 18.0,
            fmt_tick(t)
        ));
    }
    for t in nice_ticks(y_lo, y_hi, 6) {
        let y = sy(t);
        svg.push_str(&format!(
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>
<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="end">{}</text>
"##,
            MARGIN_L + plot_w,
            MARGIN_L - 8.0,
            y + 4.0,
            fmt_tick(t)
        ));
    }

    // Axis labels.
    svg.push_str(&format!(
        r##"<text x="{:.1}" y="{:.1}" font-size="14" text-anchor="middle">{}</text>
<text x="18" y="{:.1}" font-size="14" text-anchor="middle" transform="rotate(-90 18 {:.1})">{}</text>
"##,
        MARGIN_L + plot_w / 2.0,
        HEIGHT - 12.0,
        xml_escape(x_label),
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        xml_escape(y_label)
    ));

    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let dash = if s.dashed {
            r##" stroke-dasharray="7 4""##
        } else {
            ""
        };
        let pts: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
            .collect();
        svg.push_str(&format!(
            r##"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"{dash}/>
"##,
            pts.join(" ")
        ));
        for &(x, y) in &s.points {
            svg.push_str(&format!(
                r##"<circle cx="{:.1}" cy="{:.1}" r="2.6" fill="{color}"/>
"##,
                sx(x),
                sy(y)
            ));
        }
        // Legend entry (cap at what fits).
        if i < 14 {
            let ly = MARGIN_T + 8.0 + i as f64 * 20.0;
            svg.push_str(&format!(
                r##"<line x1="{:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"{dash}/>
<text x="{:.1}" y="{:.1}" font-size="12">{}</text>
"##,
                WIDTH - MARGIN_R + 12.0,
                WIDTH - MARGIN_R + 40.0,
                WIDTH - MARGIN_R + 46.0,
                ly + 4.0,
                xml_escape(&s.label)
            ));
        }
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_all_parts() {
        let s = vec![
            Series::solid("a", vec![(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]),
            Series::dashed("b", vec![(0.0, 2.0), (2.0, 0.0)]),
        ];
        let svg = line_chart("Title & Co", "x axis", "y axis", &s);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("stroke-dasharray"));
        assert!(svg.contains("Title &amp; Co"));
        assert!(svg.contains("x axis"));
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn single_point_and_flat_series_do_not_panic() {
        let s = vec![Series::solid("p", vec![(5.0, 5.0)])];
        let svg = line_chart("t", "x", "y", &s);
        assert!(svg.contains("<circle"));
        let s = vec![Series::solid("flat", vec![(0.0, 2.0), (1.0, 2.0)])];
        line_chart("t", "x", "y", &s);
    }

    #[test]
    fn coordinates_map_monotonically() {
        let s = vec![Series::solid("a", vec![(0.0, 0.0), (10.0, 10.0)])];
        let svg = line_chart("t", "x", "y", &s);
        // The polyline's first point is left of and below (larger y) the
        // second.
        let poly = svg
            .split("points=\"")
            .nth(1)
            .unwrap()
            .split('"')
            .next()
            .unwrap();
        let coords: Vec<f64> = poly.split([' ', ',']).map(|v| v.parse().unwrap()).collect();
        assert!(coords[0] < coords[2], "x increases rightward");
        assert!(coords[1] > coords[3], "y increases upward (smaller svg y)");
    }

    #[test]
    fn nice_ticks_cover_range() {
        let t = nice_ticks(0.0, 10.0, 5);
        assert!(t.contains(&0.0) && t.contains(&10.0));
        assert!(t.len() >= 4 && t.len() <= 12);
        let t = nice_ticks(0.137, 0.91, 6);
        assert!(t.iter().all(|&v| (0.137..=0.911).contains(&v)));
        assert_eq!(nice_ticks(3.0, 3.0, 5), vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_chart_panics() {
        line_chart("t", "x", "y", &[]);
    }
}
