//! OPSM: the order-preserving submatrix problem (Ben-Dor, Chor, Karp &
//! Yakhini, RECOMB 2002) — the tendency-based baseline family.
//!
//! A complete model is an ordered list of `s` columns; a row *supports* it
//! when its values strictly increase along the list. OPSM looks for a model
//! with many supporting rows. This is the "synchronous tendency" notion the
//! paper's tendency-based comparators (\[3\], \[18\], \[19\]) build on: rows only
//! share an *ordering*, with **no coherence guarantee** — which is exactly
//! the weakness reg-cluster's ε constraint addresses (Figure 4's outlier is
//! invisible to OPSM).
//!
//! The implementation is Ben-Dor's growing partial-model search: a partial
//! model fixes the first `i` and last `j` columns of the eventual order; a
//! row supports it if both fixed stretches increase, the prefix stays below
//! the suffix, and enough unused columns have values strictly in between to
//! fill the middle. The `ℓ` highest-support partial models are kept at each
//! growth step (a beam search, as in the original paper).

use regcluster_matrix::{CondId, ExpressionMatrix, GeneId};

use crate::bicluster::retain_maximal;
use crate::Bicluster;

/// Parameters of the OPSM search.
#[derive(Debug, Clone, PartialEq)]
pub struct OpsmParams {
    /// Model size `s` (number of ordered columns).
    pub size: usize,
    /// Beam width `ℓ` (partial models kept per growth step).
    pub beam_width: usize,
    /// Minimum supporting rows for a model to be reported.
    pub min_genes: usize,
    /// Maximum number of models reported.
    pub max_models: usize,
}

impl Default for OpsmParams {
    fn default() -> Self {
        Self {
            size: 4,
            beam_width: 100,
            min_genes: 2,
            max_models: 10,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct PartialModel {
    /// First columns of the order (lowest values), in order.
    prefix: Vec<CondId>,
    /// Last columns of the order (highest values), in order.
    suffix: Vec<CondId>,
}

impl PartialModel {
    fn len(&self) -> usize {
        self.prefix.len() + self.suffix.len()
    }
    fn uses(&self, c: CondId) -> bool {
        self.prefix.contains(&c) || self.suffix.contains(&c)
    }
}

/// Does `row` support the partial model given the eventual size `s`?
fn supports_partial(row: &[f64], m: &PartialModel, s: usize) -> bool {
    for w in m.prefix.windows(2) {
        if row[w[0]] >= row[w[1]] {
            return false;
        }
    }
    for w in m.suffix.windows(2) {
        if row[w[0]] >= row[w[1]] {
            return false;
        }
    }
    let hi_of_prefix = row[*m.prefix.last().expect("prefix never empty")];
    let lo_of_suffix = row[*m.suffix.first().expect("suffix never empty")];
    if hi_of_prefix >= lo_of_suffix {
        return false;
    }
    let middle_needed = s - m.len();
    if middle_needed == 0 {
        return true;
    }
    let mut middle_available = 0usize;
    for (c, &v) in row.iter().enumerate() {
        if !m.uses(c) && v > hi_of_prefix && v < lo_of_suffix {
            middle_available += 1;
            if middle_available >= middle_needed {
                return true;
            }
        }
    }
    false
}

fn support_count(matrix: &ExpressionMatrix, m: &PartialModel, s: usize) -> usize {
    matrix
        .rows()
        .filter(|(_, row)| supports_partial(row, m, s))
        .count()
}

/// Rows whose values strictly increase along a complete column order.
fn supporting_rows(matrix: &ExpressionMatrix, order: &[CondId]) -> Vec<GeneId> {
    matrix
        .rows()
        .filter(|(_, row)| order.windows(2).all(|w| row[w[0]] < row[w[1]]))
        .map(|(g, _)| g)
        .collect()
}

/// Finds up to `max_models` order-preserving submatrices of `size` columns
/// with at least `min_genes` supporting rows, best-supported first.
///
/// Output is maximal (no bicluster contained in another) and every reported
/// row strictly increases along the model order (re-verified).
pub fn opsm(matrix: &ExpressionMatrix, params: &OpsmParams) -> Vec<Bicluster> {
    assert!(params.size >= 2, "model size must be ≥ 2");
    assert!(params.beam_width >= 1, "beam width must be ≥ 1");
    let n_conds = matrix.n_conditions();
    if n_conds < params.size {
        return Vec::new();
    }

    // Seed beam: all ordered (first, last) column pairs.
    let mut beam: Vec<(usize, PartialModel)> = Vec::new();
    for a in 0..n_conds {
        for b in 0..n_conds {
            if a == b {
                continue;
            }
            let m = PartialModel {
                prefix: vec![a],
                suffix: vec![b],
            };
            let score = support_count(matrix, &m, params.size);
            if score > 0 {
                beam.push((score, m));
            }
        }
    }
    trim_beam(&mut beam, params.beam_width);

    // Grow to full size, alternating prefix / suffix extension.
    while beam.first().is_some_and(|(_, m)| m.len() < params.size) {
        let mut next: Vec<(usize, PartialModel)> = Vec::new();
        for (_, m) in &beam {
            let grow_prefix = m.prefix.len() <= m.suffix.len();
            for c in 0..n_conds {
                if m.uses(c) {
                    continue;
                }
                let mut grown = m.clone();
                if grow_prefix {
                    grown.prefix.push(c);
                } else {
                    grown.suffix.insert(0, c);
                }
                let score = support_count(matrix, &grown, params.size);
                if score >= params.min_genes.max(1) {
                    next.push((score, grown));
                }
            }
        }
        trim_beam(&mut next, params.beam_width);
        if next.is_empty() {
            return Vec::new();
        }
        beam = next;
    }

    // Materialize complete models.
    let mut out: Vec<Bicluster> = Vec::new();
    for (_, m) in beam {
        let order: Vec<CondId> = m.prefix.iter().chain(m.suffix.iter()).copied().collect();
        let rows = supporting_rows(matrix, &order);
        if rows.len() >= params.min_genes {
            out.push(Bicluster::new(rows, order));
        }
    }
    let mut out = retain_maximal(out);
    out.sort_by(|a, b| {
        b.n_genes()
            .cmp(&a.n_genes())
            .then_with(|| a.conds.cmp(&b.conds))
    });
    // Diverse top-k: the beam tends to retain many column-order variants of
    // the single best-supported submatrix; keep only models whose gene sets
    // differ substantially so `max_models` covers distinct structures.
    let mut picked: Vec<Bicluster> = Vec::new();
    for bc in out {
        if picked.len() >= params.max_models {
            break;
        }
        if picked.iter().all(|p| gene_jaccard(p, &bc) < 0.5) {
            picked.push(bc);
        }
    }
    picked
}

fn gene_jaccard(a: &Bicluster, b: &Bicluster) -> f64 {
    let mut inter = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < a.genes.len() && j < b.genes.len() {
        match a.genes[i].cmp(&b.genes[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.genes.len() + b.genes.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

fn trim_beam(beam: &mut Vec<(usize, PartialModel)>, width: usize) {
    beam.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then_with(|| a.1.prefix.cmp(&b.1.prefix))
            .then_with(|| a.1.suffix.cmp(&b.1.suffix))
    });
    beam.dedup_by(|a, b| a.1 == b.1);
    beam.truncate(width);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: Vec<Vec<f64>>) -> ExpressionMatrix {
        let genes = (0..rows.len()).map(|i| format!("g{i}")).collect();
        let conds = (0..rows[0].len()).map(|i| format!("c{i}")).collect();
        ExpressionMatrix::from_rows(genes, conds, rows).unwrap()
    }

    #[test]
    fn finds_rows_sharing_an_order() {
        // g0..g2 rise along c3 < c0 < c4 < c1 with different step sizes
        // (incoherent, but order-preserving); g3 breaks the order.
        let rows = vec![
            vec![2.0, 9.0, 5.0, 1.0, 4.0],
            vec![3.0, 8.0, 0.5, 0.1, 6.0],
            vec![1.5, 7.0, 9.5, 1.0, 2.0],
            vec![9.0, 1.0, 5.0, 8.0, 2.0],
        ];
        let m = matrix(rows);
        let params = OpsmParams {
            size: 4,
            beam_width: 50,
            min_genes: 3,
            max_models: 5,
        };
        let found = opsm(&m, &params);
        assert!(!found.is_empty());
        let best = &found[0];
        assert_eq!(best.genes, vec![0, 1, 2]);
        let mut conds = best.conds.clone();
        conds.sort_unstable();
        assert_eq!(conds, vec![0, 1, 3, 4]);
    }

    #[test]
    fn full_row_order_with_size_equals_conds() {
        let rows = vec![
            vec![1.0, 2.0, 3.0],
            vec![10.0, 20.0, 30.0],
            vec![3.0, 2.0, 1.0],
        ];
        let m = matrix(rows);
        let params = OpsmParams {
            size: 3,
            beam_width: 20,
            min_genes: 2,
            max_models: 3,
        };
        let found = opsm(&m, &params);
        assert!(found.iter().any(|b| b.genes == vec![0, 1]));
    }

    #[test]
    fn every_reported_row_is_order_preserving() {
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|i| {
                (0..6)
                    .map(|j| ((i * 29 + j * 13 + 3) % 31) as f64)
                    .collect()
            })
            .collect();
        let m = matrix(rows);
        let params = OpsmParams {
            size: 3,
            beam_width: 100,
            min_genes: 2,
            max_models: 10,
        };
        for bc in opsm(&m, &params) {
            // Recover the order by sorting conds by the first member row.
            let first = m.row(bc.genes[0]);
            let mut order = bc.conds.clone();
            order.sort_by(|&a, &b| first[a].total_cmp(&first[b]));
            for &g in &bc.genes {
                let row = m.row(g);
                for w in order.windows(2) {
                    assert!(row[w[0]] < row[w[1]], "row {g} breaks the shared order");
                }
            }
        }
    }

    #[test]
    fn no_models_when_columns_insufficient() {
        let m = matrix(vec![vec![1.0, 2.0]]);
        let params = OpsmParams {
            size: 3,
            ..Default::default()
        };
        assert!(opsm(&m, &params).is_empty());
    }

    #[test]
    fn min_genes_filters_weak_models() {
        let rows = vec![vec![1.0, 2.0, 3.0], vec![3.0, 2.0, 1.0]];
        let m = matrix(rows);
        let params = OpsmParams {
            size: 3,
            beam_width: 10,
            min_genes: 2,
            max_models: 5,
        };
        assert!(opsm(&m, &params).is_empty());
    }

    #[test]
    fn opsm_accepts_incoherent_tendencies_unlike_regcluster() {
        // Figure 4's point: same order, wildly different ratios — OPSM
        // happily groups them.
        let rows = vec![
            vec![0.0, 1.0, 2.0, 3.0],
            vec![0.0, 0.1, 0.2, 9.0],
            vec![0.0, 5.0, 5.1, 5.2],
        ];
        let m = matrix(rows);
        let params = OpsmParams {
            size: 4,
            beam_width: 50,
            min_genes: 3,
            max_models: 5,
        };
        let found = opsm(&m, &params);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].genes, vec![0, 1, 2]);
    }
}
