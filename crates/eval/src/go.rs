//! Hypergeometric GO-term enrichment.
//!
//! This reproduces the statistic behind the yeast genome GO Term Finder the
//! paper uses for Table 2: given a population of `N` genes of which `K`
//! carry a term, the p-value of observing `k` or more annotated genes in a
//! cluster of size `n` is the hypergeometric upper tail
//!
//! ```text
//! p = Σ_{i=k}^{min(K,n)} C(K,i) · C(N−K, n−i) / C(N, n).
//! ```
//!
//! Binomial coefficients are evaluated in log space with a Lanczos
//! log-gamma, so p-values down to ~1e-300 are representable — Table 2
//! reports values as low as 1.44e-08.

use regcluster_datagen::{GoCategory, GoDatabase};
use regcluster_matrix::GeneId;
use serde::{Deserialize, Serialize};

/// Enrichment of one term within one cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Enrichment {
    /// Index of the term in the database.
    pub term_index: usize,
    /// Term id (copied for convenience).
    pub term_id: String,
    /// Term name.
    pub term_name: String,
    /// Category of the term.
    pub category: GoCategory,
    /// Annotated genes inside the cluster (`k`).
    pub in_cluster: usize,
    /// Annotated genes in the population (`K`).
    pub in_population: usize,
    /// Hypergeometric upper-tail p-value.
    pub p_value: f64,
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0` (g = 7, n = 9), accurate
/// to ~1e-13 over the range used here.
#[allow(clippy::excessive_precision)] // canonical published Lanczos constants
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 8] = [
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma domain is x > 0");
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1−x) = π / sin(πx).
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.99999999999980993;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + i as f64 + 1.0);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(n, k)`; zero for the degenerate `k == 0` / `k == n` cases.
pub fn ln_choose(n: usize, k: usize) -> f64 {
    debug_assert!(k <= n);
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Upper-tail hypergeometric p-value `P(X ≥ k)` for a population of `n_pop`
/// with `k_pop` successes and `n_draw` draws.
///
/// Returns 1.0 when `k == 0` (observing at least zero is certain) and
/// handles all degenerate boundaries. Panics (debug) on inconsistent inputs.
pub fn hypergeom_upper_tail(n_pop: usize, k_pop: usize, n_draw: usize, k: usize) -> f64 {
    debug_assert!(k_pop <= n_pop && n_draw <= n_pop && k <= n_draw.min(k_pop) + 1);
    if k == 0 {
        return 1.0;
    }
    let hi = n_draw.min(k_pop);
    if k > hi {
        return 0.0;
    }
    let ln_denom = ln_choose(n_pop, n_draw);
    let mut p = 0.0f64;
    for i in k..=hi {
        // C(K, i) C(N−K, n−i) requires n−i ≤ N−K.
        if n_draw - i > n_pop - k_pop {
            continue;
        }
        let ln_term = ln_choose(k_pop, i) + ln_choose(n_pop - k_pop, n_draw - i) - ln_denom;
        p += ln_term.exp();
    }
    p.min(1.0)
}

/// Scores every term of `db` against the cluster's gene set and returns the
/// enrichments sorted by ascending p-value.
///
/// `cluster_genes` need not be sorted; it is normalized internally.
pub fn enrich(db: &GoDatabase, cluster_genes: &[GeneId]) -> Vec<Enrichment> {
    let mut genes = cluster_genes.to_vec();
    genes.sort_unstable();
    genes.dedup();
    let mut out: Vec<Enrichment> = db
        .terms
        .iter()
        .enumerate()
        .map(|(i, term)| {
            let k = GoDatabase::count_in_cluster(term, &genes);
            let p = hypergeom_upper_tail(db.n_genes, term.genes.len(), genes.len(), k);
            Enrichment {
                term_index: i,
                term_id: term.id.clone(),
                term_name: term.name.clone(),
                category: term.category,
                in_cluster: k,
                in_population: term.genes.len(),
                p_value: p,
            }
        })
        .collect();
    out.sort_by(|a, b| a.p_value.total_cmp(&b.p_value));
    out
}

/// The single most-enriched term per GO category — the layout of the
/// paper's Table 2.
pub fn top_terms_by_category(enrichments: &[Enrichment]) -> Vec<&Enrichment> {
    GoCategory::ALL
        .iter()
        .filter_map(|cat| enrichments.iter().find(|e| e.category == *cat))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcluster_datagen::GoCategory;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            assert!((ln_gamma(n as f64 + 1.0) - f.ln()).abs() < 1e-10, "n = {n}");
        }
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_choose_matches_exact_values() {
        assert!((ln_choose(10, 3) - 120f64.ln()).abs() < 1e-10);
        assert!((ln_choose(52, 5) - 2598960f64.ln()).abs() < 1e-9);
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
    }

    #[test]
    fn hypergeom_exact_small_case() {
        // Urn: N = 10, K = 4 successes, draw n = 3.
        // P(X ≥ 2) = [C(4,2)C(6,1) + C(4,3)C(6,0)] / C(10,3) = (36 + 4)/120.
        let p = hypergeom_upper_tail(10, 4, 3, 2);
        assert!((p - 40.0 / 120.0).abs() < 1e-12);
        // P(X ≥ 0) = 1, P(X ≥ 4) with 3 draws = 0.
        assert_eq!(hypergeom_upper_tail(10, 4, 3, 0), 1.0);
        assert_eq!(hypergeom_upper_tail(10, 4, 3, 4), 0.0);
    }

    #[test]
    fn hypergeom_complement_consistency() {
        // P(X ≥ 1) = 1 − C(N−K, n)/C(N, n).
        let (n_pop, k_pop, n_draw) = (50, 10, 8);
        let p = hypergeom_upper_tail(n_pop, k_pop, n_draw, 1);
        let p0 = (ln_choose(n_pop - k_pop, n_draw) - ln_choose(n_pop, n_draw)).exp();
        assert!((p - (1.0 - p0)).abs() < 1e-10);
    }

    #[test]
    fn strong_enrichment_is_tiny() {
        // 20 of 20 cluster genes annotated, out of 40 annotated in 3000.
        let p = hypergeom_upper_tail(3000, 40, 20, 20);
        assert!(p < 1e-30, "p = {p}");
        assert!(p > 0.0);
    }

    #[test]
    fn enrich_ranks_signature_term_first() {
        let mut db = GoDatabase::new(100);
        db.add_term("GO:1", "signature", GoCategory::Process, (0..10).collect());
        db.add_term("GO:2", "noise", GoCategory::Process, (50..90).collect());
        db.add_term("GO:3", "component", GoCategory::Component, (0..5).collect());
        let cluster: Vec<usize> = (0..10).collect();
        let e = enrich(&db, &cluster);
        assert_eq!(e[0].term_id, "GO:1");
        assert_eq!(e[0].in_cluster, 10);
        assert!(e[0].p_value < 1e-10);
        // The noise term has zero members in the cluster → p = 1.
        let noise = e.iter().find(|x| x.term_id == "GO:2").unwrap();
        assert_eq!(noise.p_value, 1.0);
    }

    #[test]
    fn top_terms_cover_categories_in_order() {
        let mut db = GoDatabase::new(50);
        db.add_term("GO:P", "proc", GoCategory::Process, (0..5).collect());
        db.add_term("GO:F", "func", GoCategory::Function, (0..5).collect());
        db.add_term("GO:C", "comp", GoCategory::Component, (0..5).collect());
        let e = enrich(&db, &(0..5).collect::<Vec<_>>());
        let top = top_terms_by_category(&e);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].category, GoCategory::Process);
        assert_eq!(top[1].category, GoCategory::Function);
        assert_eq!(top[2].category, GoCategory::Component);
    }

    #[test]
    fn monotone_in_k() {
        // More observed successes ⇒ smaller tail.
        let mut prev = 1.1f64;
        for k in 0..=8 {
            let p = hypergeom_upper_tail(100, 20, 8, k);
            assert!(p <= prev + 1e-12, "k = {k}");
            prev = p;
        }
    }
}
