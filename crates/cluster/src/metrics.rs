//! Cluster control-plane instruments, exported on the coordinator's
//! `/metrics` endpoint and catalogued in `docs/OBSERVABILITY.md` (the
//! docs-drift test registers this set and sweeps the doc).

use regcluster_obs::{Counter, MetricsRegistry};

/// Lease grants handed to workers.
pub const LEASES_GRANTED_METRIC: &str = "regcluster_cluster_leases_granted_total";
/// Successful heartbeat renewals.
pub const LEASE_RENEWALS_METRIC: &str = "regcluster_cluster_lease_renewals_total";
/// Leases expired for worker silence and returned to the pool.
pub const LEASES_EXPIRED_METRIC: &str = "regcluster_cluster_leases_expired_total";
/// Shards accepted (validated + durably staged).
pub const SHARDS_UPLOADED_METRIC: &str = "regcluster_cluster_shards_uploaded_total";
/// Shards refused (stale epoch, failed validation, torn upload).
pub const SHARDS_REJECTED_METRIC: &str = "regcluster_cluster_shards_rejected_total";
/// Completed shard merges (one per published generation).
pub const MERGES_METRIC: &str = "regcluster_cluster_merges_total";
/// Control-plane transitions appended to the lease journal.
pub const JOURNAL_RECORDS_METRIC: &str = "regcluster_cluster_journal_records_total";
/// Journal records replayed during coordinator crash-recovery.
pub const JOURNAL_REPLAYED_METRIC: &str = "regcluster_cluster_journal_replayed_total";
/// Torn journal tail bytes truncated away during recovery.
pub const JOURNAL_TRUNCATED_BYTES_METRIC: &str = "regcluster_cluster_journal_truncated_bytes_total";
/// Live leases restored from the journal on restart (their workers keep
/// mining; renews are honored, not fenced).
pub const LEASES_RECOVERED_METRIC: &str = "regcluster_cluster_leases_recovered_total";
/// Connections shed with 503 + `Retry-After` at the in-flight cap.
pub const REQUESTS_SHED_METRIC: &str = "regcluster_cluster_requests_shed_total";

/// Shard-upload attempts that failed to connect (coordinator down or
/// unreachable — retried with backoff).
pub const UPLOAD_CONN_REFUSED_METRIC: &str = "regcluster_cluster_upload_conn_refused_total";
/// Shard-upload attempts answered 503 + `Retry-After` (coordinator up
/// but shedding — retried after the server-chosen delay).
pub const UPLOAD_RETRY_AFTER_METRIC: &str = "regcluster_cluster_upload_retry_after_total";

/// The coordinator's instrument set.
#[derive(Clone)]
pub struct ClusterMetrics {
    /// See [`LEASES_GRANTED_METRIC`].
    pub leases_granted: Counter,
    /// See [`LEASE_RENEWALS_METRIC`].
    pub lease_renewals: Counter,
    /// See [`LEASES_EXPIRED_METRIC`].
    pub leases_expired: Counter,
    /// See [`SHARDS_UPLOADED_METRIC`].
    pub shards_uploaded: Counter,
    /// See [`SHARDS_REJECTED_METRIC`].
    pub shards_rejected: Counter,
    /// See [`MERGES_METRIC`].
    pub merges: Counter,
    /// See [`JOURNAL_RECORDS_METRIC`].
    pub journal_records: Counter,
    /// See [`JOURNAL_REPLAYED_METRIC`].
    pub journal_replayed: Counter,
    /// See [`JOURNAL_TRUNCATED_BYTES_METRIC`].
    pub journal_truncated_bytes: Counter,
    /// See [`LEASES_RECOVERED_METRIC`].
    pub leases_recovered: Counter,
    /// See [`REQUESTS_SHED_METRIC`].
    pub requests_shed: Counter,
}

impl ClusterMetrics {
    /// Registers every cluster instrument in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        ClusterMetrics {
            leases_granted: registry.counter(
                LEASES_GRANTED_METRIC,
                "Root leases granted to workers",
                &[],
            ),
            lease_renewals: registry.counter(
                LEASE_RENEWALS_METRIC,
                "Lease heartbeat renewals accepted",
                &[],
            ),
            leases_expired: registry.counter(
                LEASES_EXPIRED_METRIC,
                "Leases expired for worker silence and reassigned",
                &[],
            ),
            shards_uploaded: registry.counter(
                SHARDS_UPLOADED_METRIC,
                "Shard uploads accepted after validation",
                &[],
            ),
            shards_rejected: registry.counter(
                SHARDS_REJECTED_METRIC,
                "Shard uploads refused (stale epoch or failed validation)",
                &[],
            ),
            merges: registry.counter(
                MERGES_METRIC,
                "Completed shard merges into a published generation",
                &[],
            ),
            journal_records: registry.counter(
                JOURNAL_RECORDS_METRIC,
                "Control-plane transitions appended to the lease journal",
                &[],
            ),
            journal_replayed: registry.counter(
                JOURNAL_REPLAYED_METRIC,
                "Journal records replayed during crash-recovery",
                &[],
            ),
            journal_truncated_bytes: registry.counter(
                JOURNAL_TRUNCATED_BYTES_METRIC,
                "Torn journal tail bytes truncated during recovery",
                &[],
            ),
            leases_recovered: registry.counter(
                LEASES_RECOVERED_METRIC,
                "Live leases restored from the journal on restart",
                &[],
            ),
            requests_shed: registry.counter(
                REQUESTS_SHED_METRIC,
                "Connections shed with 503 at the in-flight cap",
                &[],
            ),
        }
    }
}

/// The worker's instrument set. Workers expose no `/metrics` endpoint;
/// these counters back the end-of-run [`WorkerReport`](crate::WorkerReport)
/// and exist as a registry set so the docs-drift test catalogues them.
#[derive(Clone)]
pub struct WorkerMetrics {
    /// See [`UPLOAD_CONN_REFUSED_METRIC`].
    pub upload_conn_refused: Counter,
    /// See [`UPLOAD_RETRY_AFTER_METRIC`].
    pub upload_retry_after: Counter,
}

impl WorkerMetrics {
    /// Registers every worker instrument in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        WorkerMetrics {
            upload_conn_refused: registry.counter(
                UPLOAD_CONN_REFUSED_METRIC,
                "Shard uploads that could not connect to the coordinator",
                &[],
            ),
            upload_retry_after: registry.counter(
                UPLOAD_RETRY_AFTER_METRIC,
                "Shard uploads answered 503 with Retry-After (shed)",
                &[],
            ),
        }
    }
}
