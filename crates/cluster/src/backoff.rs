//! Unified retry policy for the worker's control-plane loops.
//!
//! Every retry loop in `worker.rs` used to sleep a fixed `cfg.poll`
//! between attempts, which synchronizes workers into thundering herds
//! exactly when the coordinator is struggling (restart, shed, slow
//! link). [`Backoff`] replaces those sleeps with **exponential backoff
//! and decorrelated jitter**: each delay is drawn uniformly from
//! `[base, 3 × previous]`, clamped to a cap — so consecutive retries
//! spread out *and* desynchronize from other workers, while an optional
//! budget bounds how long a loop keeps trying in total.
//!
//! When the coordinator sheds load it answers 503 with a `Retry-After`
//! header; [`Backoff::sleep_hinted`] honors that server-chosen delay
//! (still clamped to the cap and charged against the budget) instead of
//! the computed one.

use std::time::Duration;

/// Exponential backoff with decorrelated jitter, a delay cap, and an
/// optional total-sleep budget.
///
/// ```
/// use std::time::Duration;
/// use regcluster_cluster::Backoff;
///
/// let mut b = Backoff::new(Duration::from_millis(50), Duration::from_secs(2))
///     .with_budget(Duration::from_secs(10));
/// while b.sleep() {
///     // ... retry the request; `sleep` returns false once the 10 s
///     // budget is exhausted ...
///     break;
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    budget: Option<Duration>,
    slept: Duration,
    prev: Duration,
    rng: u64,
}

impl Backoff {
    /// A policy sleeping between `base` and `cap` per retry, with no
    /// total budget (retries forever, like the acquire loop must).
    pub fn new(base: Duration, cap: Duration) -> Backoff {
        let base = base.max(Duration::from_millis(1));
        Backoff {
            base,
            cap: cap.max(base),
            budget: None,
            slept: Duration::ZERO,
            prev: Duration::ZERO,
            rng: seed(),
        }
    }

    /// Bounds the *total* time spent sleeping across retries; once spent,
    /// [`next_delay`](Backoff::next_delay) returns `None` and
    /// [`sleep`](Backoff::sleep) returns `false`.
    pub fn with_budget(mut self, budget: Duration) -> Backoff {
        self.budget = Some(budget);
        self
    }

    /// Fixes the jitter stream (tests that assert delay sequences).
    pub fn with_seed(mut self, seed: u64) -> Backoff {
        self.rng = seed | 1;
        self
    }

    /// Forgets accumulated growth and budget spend — call after a
    /// *successful* exchange so the next failure starts from `base`.
    pub fn reset(&mut self) {
        self.prev = Duration::ZERO;
        self.slept = Duration::ZERO;
    }

    /// Computes the next delay without sleeping: uniform in
    /// `[base, 3 × previous]` (decorrelated jitter), clamped to the cap,
    /// truncated to the remaining budget. `None` means the budget is
    /// exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        self.delay_from(None)
    }

    /// Sleeps the next delay. Returns `false` (without sleeping further)
    /// once the budget is exhausted.
    pub fn sleep(&mut self) -> bool {
        self.sleep_hinted(None)
    }

    /// Sleeps the next delay, preferring the server-provided `hint`
    /// (a parsed `Retry-After`, still capped and budget-charged) over
    /// the computed one. Returns `false` once the budget is exhausted.
    pub fn sleep_hinted(&mut self, hint: Option<Duration>) -> bool {
        match self.delay_from(hint) {
            Some(d) => {
                std::thread::sleep(d);
                true
            }
            None => false,
        }
    }

    fn delay_from(&mut self, hint: Option<Duration>) -> Option<Duration> {
        let remaining = match self.budget {
            Some(budget) => budget.checked_sub(self.slept)?,
            None => Duration::MAX,
        };
        if remaining.is_zero() {
            return None;
        }
        let computed = match hint {
            Some(h) => h.max(self.base),
            None => {
                // Decorrelated jitter (the AWS "full jitter" variant):
                // uniform in [base, 3 * prev], so delays both grow and
                // desynchronize across workers.
                let lo = self.base.as_millis() as u64;
                let hi = (self.prev.as_millis() as u64).saturating_mul(3).max(lo);
                Duration::from_millis(lo + self.next_u64() % (hi - lo + 1))
            }
        };
        let delay = computed.min(self.cap).min(remaining);
        self.prev = delay;
        self.slept += delay;
        Some(delay)
    }

    /// xorshift64* — tiny, dependency-free, plenty for jitter.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Seeds jitter from wall-clock nanos xor'd with a stack address, so
/// concurrently-started workers draw different streams without any
/// shared state.
fn seed() -> u64 {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x9e37_79b9_7f4a_7c15);
    let addr = &t as *const u64 as u64;
    (t ^ addr.rotate_left(32)) | 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_stay_within_base_and_cap() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(80);
        let mut b = Backoff::new(base, cap).with_seed(42);
        for _ in 0..100 {
            let d = b.next_delay().unwrap();
            assert!(
                d >= base && d <= cap,
                "delay {d:?} out of [{base:?}, {cap:?}]"
            );
        }
    }

    #[test]
    fn budget_exhausts_and_reset_restores_it() {
        let mut b = Backoff::new(Duration::from_millis(40), Duration::from_millis(40))
            .with_budget(Duration::from_millis(100))
            .with_seed(7);
        // 40 + 40 + 20 (truncated to remaining) = 100, then dry.
        assert_eq!(b.next_delay(), Some(Duration::from_millis(40)));
        assert_eq!(b.next_delay(), Some(Duration::from_millis(40)));
        assert_eq!(b.next_delay(), Some(Duration::from_millis(20)));
        assert_eq!(b.next_delay(), None);
        assert!(!b.sleep());
        b.reset();
        assert!(b.next_delay().is_some());
    }

    #[test]
    fn hint_overrides_jitter_but_not_cap() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(500))
            .with_budget(Duration::from_secs(5))
            .with_seed(3);
        assert_eq!(
            b.delay_from(Some(Duration::from_millis(200))),
            Some(Duration::from_millis(200))
        );
        // A hint above the cap is clamped to it.
        assert_eq!(
            b.delay_from(Some(Duration::from_secs(30))),
            Some(Duration::from_millis(500))
        );
    }

    #[test]
    fn jitter_decorrelates_two_streams() {
        let mk = |seed| {
            let mut b =
                Backoff::new(Duration::from_millis(1), Duration::from_secs(1)).with_seed(seed);
            // Grow past the base so the [base, 3*prev] window is wide.
            (0..8).map(|_| b.next_delay().unwrap()).collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2), "different seeds must draw different delays");
    }
}
