//! Offline stub of `proptest`: deterministic generation-only property
//! testing.
//!
//! Implements the macro surface (`proptest!`, `prop_assert*!`,
//! `prop_assume!`, `prop_oneof!`), the [`strategy::Strategy`] combinators,
//! collection/sample/regex-string strategies, and a fixed-seed
//! [`test_runner::TestRunner`]. Failing cases are reported with the case
//! number and message; there is no shrinking, so the first failing input is
//! printed as-is by the property's own assertion message.

pub mod arbitrary;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{btree_set, vec};
    }
    /// Sampling strategies.
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// The glob-import module test files use.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares `#[test]` functions that run a property over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            <$crate::test_runner::ProptestConfig as ::std::default::Default>::default();
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            let strategy = ($($strat,)+);
            runner.run(&strategy, |($($pat,)+)| {
                $body
                Ok(())
            });
        }
    )*};
}

/// Fails the current test case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case when the two values are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Fails the current test case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
        let _ = r;
    }};
}

/// Discards the current test case (without failing) when the precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

/// A strategy choosing uniformly between the given same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
