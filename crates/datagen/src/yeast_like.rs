//! A structured stand-in for the Tavazoie/Church yeast benchmark.
//!
//! The paper's effectiveness experiment (§5.2) runs on the 2884 × 17 yeast
//! expression matrix from Tavazoie et al., served by the Church lab, and
//! scores the discovered clusters with the yeast genome GO Term Finder.
//! Neither resource is available offline, so this module generates a matrix
//! of the same shape with planted *co-regulation modules* that have the
//! statistical signature the real data exhibits under the reg-cluster model:
//!
//! * each module is a shifting-and-scaling response over 6–9 conditions with
//!   per-gene sensitivities (scaling magnitudes) spread over a wide range —
//!   the behaviour the paper motivates with hormone-sensitivity studies;
//! * roughly a quarter of a module's genes respond negatively (n-members);
//! * module condition sets overlap, so discovered clusters overlap;
//! * the remaining genes are unstructured noise.
//!
//! A synthetic GO annotation database is generated jointly: each module is
//! enriched for one term per GO category (plus noise annotations), so that
//! hypergeometric enrichment of a *recovered* module reproduces the
//! extremely low p-values of the paper's Table 2.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use regcluster_matrix::{ExpressionMatrix, GeneId};

use crate::go::{GoCategory, GoDatabase};
use crate::synthetic::PlantedCluster;
use crate::DatagenError;

/// Configuration of the simulated yeast dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct YeastConfig {
    /// Number of genes (2884 in the benchmark).
    pub n_genes: usize,
    /// Number of conditions (17 in the benchmark).
    pub n_conds: usize,
    /// Number of planted co-regulation modules.
    pub n_modules: usize,
    /// Module size range (genes), inclusive.
    pub genes_per_module: (usize, usize),
    /// Module dimensionality: `(normal, wide)`. The first `n_wide_modules`
    /// modules span `wide` conditions, the rest `normal`. A wide module's
    /// every `≥ normal`-length subchain is a validated reg-cluster, which
    /// is what produces the paper's heavily-overlapping cluster pairs.
    pub conds_per_module: (usize, usize),
    /// How many modules are wide (see `conds_per_module`).
    pub n_wide_modules: usize,
    /// Probability a module gene responds negatively.
    pub neg_fraction: f64,
    /// Regulation threshold (fraction of the value range) the planted
    /// modules are guaranteed to satisfy.
    pub plant_gamma: f64,
    /// Fraction of a module's genes annotated with its signature GO terms.
    pub go_coverage: f64,
    /// Number of unrelated background GO terms per category.
    pub go_background_terms: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for YeastConfig {
    fn default() -> Self {
        Self {
            n_genes: 2884,
            n_conds: 17,
            n_modules: 16,
            genes_per_module: (20, 45),
            conds_per_module: (6, 7),
            n_wide_modules: 1,
            neg_fraction: 0.25,
            plant_gamma: 0.08,
            go_coverage: 0.8,
            go_background_terms: 15,
            seed: 2006,
        }
    }
}

/// The simulated yeast dataset: matrix, module ground truth and GO database.
#[derive(Debug, Clone)]
pub struct YeastDataset {
    /// The 2884 × 17 (by default) expression matrix.
    pub matrix: ExpressionMatrix,
    /// Ground truth of the planted modules.
    pub modules: Vec<PlantedCluster>,
    /// Synthetic GO annotations enriched on the modules.
    pub go: GoDatabase,
}

/// Names used for the module signature terms, echoing Table 2 of the paper.
const PROCESS_NAMES: [&str; 5] = [
    "DNA replication",
    "protein biosynthesis",
    "cytoplasm organization and biogenesis",
    "response to stress",
    "carbohydrate metabolism",
];
const FUNCTION_NAMES: [&str; 5] = [
    "DNA-directed DNA polymerase activity",
    "structural constituent of ribosome",
    "helicase activity",
    "oxidoreductase activity",
    "transporter activity",
];
const COMPONENT_NAMES: [&str; 5] = [
    "replication fork",
    "cytosolic ribosome",
    "ribonucleoprotein complex",
    "mitochondrion",
    "nucleolus",
];

/// Generates the simulated yeast dataset.
///
/// # Errors
///
/// Returns [`DatagenError`] for invalid or infeasible configurations (module
/// gene demand exceeding the gene population, ranges inverted, thresholds
/// out of domain).
pub fn yeast_like(config: &YeastConfig) -> Result<YeastDataset, DatagenError> {
    validate(config)?;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let vm = 10.0f64;
    const DELTA: f64 = 0.05;

    let mut values: Vec<f64> = (0..config.n_genes * config.n_conds)
        .map(|_| rng.gen_range(0.0..vm))
        .collect();

    let mut pool: Vec<GeneId> = (0..config.n_genes).collect();
    pool.shuffle(&mut rng);
    let mut pool_next = 0usize;

    let mut modules = Vec::with_capacity(config.n_modules);
    for module_idx in 0..config.n_modules {
        let k = rng.gen_range(config.genes_per_module.0..=config.genes_per_module.1);
        if pool_next + k > pool.len() {
            return Err(DatagenError::Infeasible(format!(
                "module gene pools exhausted after {} modules",
                modules.len()
            )));
        }
        let mut genes: Vec<GeneId> = pool[pool_next..pool_next + k].to_vec();
        pool_next += k;
        genes.sort_unstable();

        let m = if module_idx < config.n_wide_modules {
            config.conds_per_module.1
        } else {
            config.conds_per_module.0
        }
        .min(config.n_conds);
        let mut conds: Vec<usize> = (0..config.n_conds).collect();
        conds.shuffle(&mut rng);
        conds.truncate(m);

        // Base profile with gaps above the regulation floor.
        let gap_floor = (config.plant_gamma * (1.0 + DELTA)).min(0.9 / (m - 1) as f64);
        let slack = 1.0 - gap_floor * (m - 1) as f64;
        let mut gaps: Vec<f64> = (0..m - 1).map(|_| rng.gen_range(0.05..1.0)).collect();
        let sum: f64 = gaps.iter().sum();
        for g in &mut gaps {
            *g = gap_floor + slack * (*g / sum);
        }
        let mut base = vec![0.0f64];
        for g in &gaps {
            base.push(base.last().unwrap() + g);
        }
        let last = *base.last().unwrap();
        for b in &mut base {
            *b /= last;
        }
        let min_gap = base
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(f64::INFINITY, f64::min);
        let s_min = (config.plant_gamma * vm * (1.0 + DELTA / 2.0)) / min_gap;
        let s_min = s_min.min(vm);

        let mut negated = Vec::with_capacity(k);
        for &g in &genes {
            let neg = rng.gen_bool(config.neg_fraction);
            negated.push(neg);
            // Per-gene sensitivity: the full feasible scaling range, so
            // magnitudes differ by up to ~40% within a module.
            let s_mag = rng.gen_range(s_min..=vm);
            let (s1, s2) = if neg {
                (-s_mag, rng.gen_range(s_mag..=vm))
            } else {
                (s_mag, rng.gen_range(0.0..=(vm - s_mag)))
            };
            let row_start = g * config.n_conds;
            for (j, &c) in conds.iter().enumerate() {
                values[row_start + c] = s1 * base[j] + s2;
            }
        }
        modules.push(PlantedCluster {
            genes,
            chain: conds,
            negated,
        });
    }

    // GO database: three signature terms per module + background terms.
    let mut go = GoDatabase::new(config.n_genes);
    for (mi, module) in modules.iter().enumerate() {
        let n_annot = ((module.genes.len() as f64) * config.go_coverage)
            .round()
            .max(1.0) as usize;
        for (cat_i, cat) in GoCategory::ALL.iter().enumerate() {
            let names = match cat {
                GoCategory::Process => &PROCESS_NAMES,
                GoCategory::Function => &FUNCTION_NAMES,
                GoCategory::Component => &COMPONENT_NAMES,
            };
            let mut annotated: Vec<GeneId> = module.genes.clone();
            annotated.shuffle(&mut rng);
            annotated.truncate(n_annot);
            // Dilute with unrelated genes (~0.5% of the population).
            let n_noise = (config.n_genes / 200).max(1);
            for _ in 0..n_noise {
                annotated.push(rng.gen_range(0..config.n_genes));
            }
            go.add_term(
                format!("GO:{:07}", mi * 3 + cat_i + 1),
                format!("{} (module {})", names[mi % names.len()], mi),
                *cat,
                annotated,
            );
        }
    }
    for (cat_i, cat) in GoCategory::ALL.iter().enumerate() {
        for t in 0..config.go_background_terms {
            let size = rng.gen_range(10..200);
            let genes: Vec<GeneId> = (0..size)
                .map(|_| rng.gen_range(0..config.n_genes))
                .collect();
            go.add_term(
                format!("GO:9{:06}", cat_i * 1000 + t),
                format!("background term {cat_i}-{t}"),
                *cat,
                genes,
            );
        }
    }

    let matrix = ExpressionMatrix::from_flat_unlabeled(config.n_genes, config.n_conds, values)
        .expect("generated values are finite");
    Ok(YeastDataset {
        matrix,
        modules,
        go,
    })
}

fn validate(config: &YeastConfig) -> Result<(), DatagenError> {
    if config.n_genes == 0 || config.n_conds < 2 {
        return Err(DatagenError::InvalidConfig(
            "need ≥ 1 gene and ≥ 2 conditions".into(),
        ));
    }
    if config.genes_per_module.0 < 2 || config.genes_per_module.0 > config.genes_per_module.1 {
        return Err(DatagenError::InvalidConfig(
            "genes_per_module range invalid".into(),
        ));
    }
    if config.conds_per_module.0 < 2 || config.conds_per_module.0 > config.conds_per_module.1 {
        return Err(DatagenError::InvalidConfig(
            "conds_per_module range invalid".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.neg_fraction) || !(0.0..=1.0).contains(&config.go_coverage) {
        return Err(DatagenError::InvalidConfig(
            "fractions must be in [0, 1]".into(),
        ));
    }
    if !(config.plant_gamma > 0.0 && config.plant_gamma < 0.45) {
        return Err(DatagenError::InvalidConfig(
            "plant_gamma must be in (0, 0.45)".into(),
        ));
    }
    // Feasibility of the largest module dimensionality.
    let m = config.conds_per_module.1.min(config.n_conds);
    let gap_floor = (config.plant_gamma * 1.05).min(0.9 / (m - 1) as f64);
    if gap_floor * (m - 1) as f64 > 1.0 {
        return Err(DatagenError::Infeasible(format!(
            "plant_gamma {} cannot support {m}-condition modules",
            config.plant_gamma
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> YeastConfig {
        YeastConfig {
            n_genes: 300,
            n_conds: 17,
            n_modules: 4,
            genes_per_module: (10, 15),
            ..YeastConfig::default()
        }
    }

    #[test]
    fn deterministic() {
        let a = yeast_like(&small()).unwrap();
        let b = yeast_like(&small()).unwrap();
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.modules, b.modules);
        assert_eq!(a.go, b.go);
    }

    #[test]
    fn default_shape_matches_benchmark() {
        let cfg = YeastConfig::default();
        assert_eq!(cfg.n_genes, 2884);
        assert_eq!(cfg.n_conds, 17);
        let d = yeast_like(&small()).unwrap();
        assert_eq!(d.matrix.n_conditions(), 17);
        assert_eq!(d.modules.len(), 4);
    }

    #[test]
    fn modules_are_valid_reg_patterns() {
        let cfg = small();
        let d = yeast_like(&cfg).unwrap();
        for module in &d.modules {
            assert!((6..=7).contains(&module.n_conditions()));
            for (gi, &g) in module.genes.iter().enumerate() {
                let row = d.matrix.row(g);
                let (lo, hi) = d.matrix.gene_range(g);
                let gamma_i = cfg.plant_gamma * (hi - lo);
                let sign = if module.negated[gi] { -1.0 } else { 1.0 };
                for w in module.chain.windows(2) {
                    assert!((row[w[1]] - row[w[0]]) * sign > gamma_i);
                }
            }
        }
    }

    #[test]
    fn go_terms_enrich_their_modules() {
        let cfg = small();
        let d = yeast_like(&cfg).unwrap();
        // 3 signature terms per module + background terms per category.
        assert_eq!(
            d.go.terms.len(),
            cfg.n_modules * 3 + cfg.go_background_terms * 3
        );
        for (mi, module) in d.modules.iter().enumerate() {
            let term = &d.go.terms[mi * 3];
            let inside = GoDatabase::count_in_cluster(term, &module.genes);
            // At least ~half the module carries its signature term.
            assert!(
                inside * 2 >= module.genes.len(),
                "module {mi}: only {inside}/{} annotated",
                module.genes.len()
            );
        }
    }

    #[test]
    fn rejects_bad_configs() {
        let mut c = small();
        c.genes_per_module = (5, 2);
        assert!(yeast_like(&c).is_err());
        let mut c = small();
        c.plant_gamma = 0.0;
        assert!(yeast_like(&c).is_err());
        let mut c = small();
        c.n_modules = 100; // 100 × ≥10 genes > 300
        assert!(matches!(yeast_like(&c), Err(DatagenError::Infeasible(_))));
    }
}
