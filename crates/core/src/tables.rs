//! Struct-of-arrays hot tables over all per-gene `RWave^γ` models.
//!
//! [`crate::rwave::RWaveModel`] is the per-gene source of truth,
//! but its layout (one struct per gene, pointer binary searches per query)
//! is wrong for the enumeration hot path, which asks the same four
//! questions for *every member gene* at *every node*. [`HotTables`]
//! re-materializes the answers once, at [`Miner`](crate::Miner)
//! construction, as flat arrays indexed `gene * stride + key` — sequential,
//! prefetch-friendly walks with no per-query search:
//!
//! * `rank[g·n + c]` — the value rank of condition `c` in gene `g`'s model;
//! * `succ_start[g·n + r]` — smallest rank whose conditions are regulation
//!   successors of rank `r` (Lemma 3.1), sentinel `n` for "none";
//! * `pred_end1[g·n + r]` — one past the largest predecessor rank, `0` for
//!   "none";
//! * `fwd_ge[g·(n+2) + need]` / `bwd_start[g·(n+2) + need]` — cumulative
//!   max-chain thresholds: rank `r` sustains a forward chain of `need` more
//!   conditions **iff** `r < fwd_ge[need]`, and a backward chain **iff**
//!   `r ≥ bwd_start[need]`. These are exact because the models' max-chain
//!   tables are monotone in rank (`maxlen_fwd` non-increasing,
//!   `maxlen_bwd` non-decreasing — proved in `rwave.rs`, asserted here in
//!   debug builds).
//!
//! Together the last three collapse the miner's per-member qualification
//! test (two binary searches + a float compare in the old layout) into a
//! pair of `u32` range compares — see `expand_node` in `miner.rs`.
//!
//! Optionally (bounded by a memory budget) the tables also carry per-gene
//! **rank-suffix bitmasks** over condition ids: `suffix(g, r)` has one bit
//! per condition whose rank in gene `g`'s model is `≥ r`. The candidate
//! conditions a member contributes are always a rank *range* `[lo, hi)`,
//! so its packed-bitset form is `suffix(lo) & !suffix(hi)` — accumulated
//! word-parallel into a [`BitMask`] by
//! [`HotTables::accumulate_candidates`]. When the budget is exceeded the
//! same bits are set by a short rank walk instead; both paths produce the
//! identical mask.

use crate::bitset::{words_for, BitMask};
use crate::rwave::RWaveModel;
use regcluster_matrix::{CondId, GeneId};

/// Upper bound on the rank-suffix bitmask table
/// (`genes · (n+1) · ⌈n/64⌉ · 8` bytes). Past it, candidate accumulation
/// falls back to per-rank bit sets — same output, no quadratic-in-`n`
/// memory. 64 MiB covers the paper's scales (3000 × 40 needs < 1 MiB)
/// with two orders of magnitude to spare.
const SUFFIX_TABLE_BUDGET_BYTES: usize = 64 << 20;

/// Flat, read-only lookup tables for the enumeration hot path.
///
/// Built once per [`Miner`](crate::Miner) from the per-gene models; see
/// the [module docs](self) for the layout and `docs/PERFORMANCE.md` for
/// the cost model.
#[derive(Debug)]
pub struct HotTables {
    n_conds: usize,
    /// Words per suffix bitmask row.
    words: usize,
    /// `rank[g·n + c]` — rank of condition `c` in gene `g`'s model.
    rank: Vec<u32>,
    /// `order[g·n + r]` — condition id at rank `r` (fallback bit walk).
    order: Vec<u32>,
    /// `succ_start[g·n + r]`, sentinel `n_conds` for "no successor".
    succ_start: Vec<u32>,
    /// `pred_end1[g·n + r]` — predecessor end + 1, `0` for "none".
    pred_end1: Vec<u32>,
    /// `fwd_ge[g·(n+2) + need]` — number of ranks with
    /// `maxlen_fwd ≥ need` (a prefix of ranks).
    fwd_ge: Vec<u32>,
    /// `bwd_start[g·(n+2) + need]` — first rank with
    /// `maxlen_bwd ≥ need` (`n_conds` when none).
    bwd_start: Vec<u32>,
    /// Rank-suffix bitmasks, `None` past the memory budget.
    suffix: Option<Vec<u64>>,
}

impl HotTables {
    /// Builds the tables for `models` (one per gene, each over `n_conds`
    /// conditions).
    pub fn build(models: &[RWaveModel], n_conds: usize) -> Self {
        let n = n_conds;
        let g_count = models.len();
        let words = words_for(n);
        let suffix_bytes = g_count
            .saturating_mul(n + 1)
            .saturating_mul(words)
            .saturating_mul(8);
        let mut suffix = if suffix_bytes <= SUFFIX_TABLE_BUDGET_BYTES {
            Some(vec![0u64; g_count * (n + 1) * words])
        } else {
            None
        };

        let mut rank = vec![0u32; g_count * n];
        let mut order = vec![0u32; g_count * n];
        let mut succ_start = vec![0u32; g_count * n];
        let mut pred_end1 = vec![0u32; g_count * n];
        let mut fwd_ge = vec![0u32; g_count * (n + 2)];
        let mut bwd_start = vec![0u32; g_count * (n + 2)];
        let mut mf: Vec<u32> = Vec::with_capacity(n);
        let mut mb: Vec<u32> = Vec::with_capacity(n);

        for (g, model) in models.iter().enumerate() {
            debug_assert_eq!(model.len(), n, "model/matrix condition count mismatch");
            let base = g * n;
            mf.clear();
            mb.clear();
            for r in 0..n {
                let c = model.cond_at(r);
                order[base + r] = c as u32;
                rank[base + c] = r as u32;
                succ_start[base + r] = model.successor_start(r).unwrap_or(n) as u32;
                pred_end1[base + r] = model.predecessor_end(r).map_or(0, |p| p as u32 + 1);
                mf.push(model.max_chain_fwd(r) as u32);
                mb.push(model.max_chain_bwd(r) as u32);
            }
            // The threshold tables are exact only because the max-chain
            // tables are monotone in rank (proved in rwave.rs).
            debug_assert!(mf.windows(2).all(|w| w[0] >= w[1]), "maxlen_fwd monotone");
            debug_assert!(mb.windows(2).all(|w| w[0] <= w[1]), "maxlen_bwd monotone");
            let tbase = g * (n + 2);
            for need in 0..=(n + 1) {
                let need = need as u32;
                // mf is non-increasing: `v ≥ need` holds on a prefix.
                fwd_ge[tbase + need as usize] = mf.partition_point(|&v| v >= need) as u32;
                // mb is non-decreasing: `v < need` holds on a prefix.
                bwd_start[tbase + need as usize] = mb.partition_point(|&v| v < need) as u32;
            }
            if let Some(sfx) = suffix.as_mut() {
                // suffix(n) = ∅; suffix(r) = suffix(r+1) ∪ {cond_at(r)}.
                let sbase = g * (n + 1) * words;
                for r in (0..n).rev() {
                    let src = sbase + (r + 1) * words;
                    let dst = sbase + r * words;
                    sfx.copy_within(src..src + words, dst);
                    let c = order[base + r] as usize;
                    sfx[dst + c / 64] |= 1u64 << (c % 64);
                }
            }
        }
        HotTables {
            n_conds: n,
            words,
            rank,
            order,
            succ_start,
            pred_end1,
            fwd_ge,
            bwd_start,
            suffix,
        }
    }

    /// Number of conditions every table row covers.
    #[inline]
    pub fn n_conds(&self) -> usize {
        self.n_conds
    }

    /// True when the rank-suffix bitmask table was materialized (within
    /// the memory budget); false means candidate accumulation walks ranks.
    #[inline]
    pub fn has_suffix_masks(&self) -> bool {
        self.suffix.is_some()
    }

    /// Rank of condition `c` in gene `g`'s model (flat lookup).
    #[inline]
    pub fn rank_of(&self, g: GeneId, c: CondId) -> usize {
        self.rank[g * self.n_conds + c] as usize
    }

    /// The condition ids of gene `g` at ranks `[lo, hi)`, as a flat slice
    /// of the struct-of-arrays order table — a sequential, prefetch-
    /// friendly walk of a member's qualifying candidates.
    #[inline]
    pub fn conds_in_range(&self, g: GeneId, lo: u32, hi: u32) -> &[u32] {
        let base = g * self.n_conds;
        &self.order[base + lo as usize..base + hi as usize]
    }

    /// Clamps a required-extension length into the threshold tables'
    /// index range (`need > n` can only yield an empty row).
    #[inline]
    pub fn need_index(&self, need: usize) -> usize {
        need.min(self.n_conds + 1)
    }

    /// Number of ranks of gene `g` sustaining a forward chain of at least
    /// `need` conditions — equivalently, rank `r` sustains one **iff**
    /// `r < fwd_cutoff`.
    #[inline]
    pub fn fwd_cutoff(&self, g: GeneId, need_idx: usize) -> u32 {
        self.fwd_ge[g * (self.n_conds + 2) + need_idx]
    }

    /// First rank of gene `g` sustaining a backward chain of at least
    /// `need` conditions (`n` when none) — rank `r` sustains one **iff**
    /// `r ≥ bwd_first`.
    #[inline]
    pub fn bwd_first(&self, g: GeneId, need_idx: usize) -> u32 {
        self.bwd_start[g * (self.n_conds + 2) + need_idx]
    }

    /// The forward qualification range for a member at rank `r_last`
    /// needing `need` more conditions: rank `r` qualifies **iff**
    /// `lo ≤ r < hi`. `lo` is the successor start of `r_last` (sentinel
    /// `n`), `hi` the forward max-chain cutoff.
    #[inline]
    pub fn fwd_range(&self, g: GeneId, r_last: usize, need_idx: usize) -> (u32, u32) {
        (
            self.succ_start[g * self.n_conds + r_last],
            self.fwd_cutoff(g, need_idx),
        )
    }

    /// The backward qualification range, mirror of
    /// [`HotTables::fwd_range`]: rank `r` qualifies **iff** `lo ≤ r < hi`,
    /// with `lo` the backward max-chain start and `hi` one past the
    /// predecessor end of `r_last` (`0` when none).
    #[inline]
    pub fn bwd_range(&self, g: GeneId, r_last: usize, need_idx: usize) -> (u32, u32) {
        (
            self.bwd_first(g, need_idx),
            self.pred_end1[g * self.n_conds + r_last],
        )
    }

    /// ORs the condition ids at ranks `[lo, hi)` of gene `g` into `mask`:
    /// word-parallel (`suffix(lo) & !suffix(hi)` per lane) when the
    /// suffix table exists, by rank walk otherwise. Both paths set the
    /// identical bits.
    #[inline]
    pub fn accumulate_candidates(&self, g: GeneId, lo: u32, hi: u32, mask: &mut BitMask) {
        if lo >= hi {
            return;
        }
        if let Some(sfx) = &self.suffix {
            let row = |r: u32| {
                let off = (g * (self.n_conds + 1) + r as usize) * self.words;
                &sfx[off..off + self.words]
            };
            mask.or_range_masked(row(lo), row(hi));
        } else {
            let base = g * self.n_conds;
            for r in lo as usize..hi as usize {
                mask.set(self.order[base + r] as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::indices;

    fn g1_model() -> RWaveModel {
        // g1 of the paper's running example, γ_1 = 4.5.
        let g1 = [10.0, -14.5, 15.0, 10.5, 0.0, 14.5, -15.0, 0.0, -5.0, -5.0];
        RWaveModel::build(&g1, 4.5)
    }

    #[test]
    fn tables_agree_with_model_queries() {
        let model = g1_model();
        let n = model.len();
        let t = HotTables::build(std::slice::from_ref(&model), n);
        for c in 0..n {
            assert_eq!(t.rank_of(0, c), model.rank_of(c));
        }
        for r in 0..n {
            for need in 0..=n + 1 {
                let (flo, fhi) = t.fwd_range(0, r, t.need_index(need));
                let (blo, bhi) = t.bwd_range(0, r, t.need_index(need));
                for ri in 0..n {
                    let fwd_ok =
                        ri > r && model.is_up_regulated(r, ri) && model.max_chain_fwd(ri) >= need;
                    let bwd_ok =
                        ri < r && model.is_up_regulated(ri, r) && model.max_chain_bwd(ri) >= need;
                    let ri = ri as u32;
                    assert_eq!(
                        flo <= ri && ri < fhi,
                        fwd_ok,
                        "fwd r={r} ri={ri} need={need}"
                    );
                    assert_eq!(
                        blo <= ri && ri < bhi,
                        bwd_ok,
                        "bwd r={r} ri={ri} need={need}"
                    );
                }
            }
        }
    }

    #[test]
    fn accumulate_candidates_sets_rank_range_conditions() {
        let model = g1_model();
        let n = model.len();
        let t = HotTables::build(std::slice::from_ref(&model), n);
        assert!(t.has_suffix_masks());
        for lo in 0..=n as u32 {
            for hi in 0..=n as u32 {
                let mut mask = BitMask::with_bits(n);
                t.accumulate_candidates(0, lo, hi, &mut mask);
                let mut expect: Vec<usize> = (lo..hi.min(n as u32))
                    .map(|r| model.cond_at(r as usize))
                    .collect();
                expect.sort_unstable();
                assert_eq!(indices(mask.words()), expect, "lo={lo} hi={hi}");
            }
        }
    }
}
