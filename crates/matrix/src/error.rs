use std::fmt;

/// Errors produced while constructing, transforming or (de)serializing
/// expression matrices.
#[derive(Debug)]
pub enum MatrixError {
    /// A row had a different number of values than the header declared.
    RaggedRow {
        /// Zero-based row index in the input (excluding the header).
        row: usize,
        /// Number of values expected (the header width).
        expected: usize,
        /// Number of values found.
        found: usize,
    },
    /// The matrix would have zero genes or zero conditions.
    Empty,
    /// Duplicate gene or condition label.
    DuplicateLabel(String),
    /// A cell could not be parsed as a floating-point number.
    BadValue {
        /// Zero-based data row.
        row: usize,
        /// Zero-based data column.
        col: usize,
        /// The offending token.
        token: String,
    },
    /// A non-finite value (NaN or infinity) was encountered where a finite
    /// expression level is required.
    NonFinite {
        /// Gene (row) index.
        gene: usize,
        /// Condition (column) index.
        cond: usize,
    },
    /// A transform precondition failed (e.g. log of a non-positive value).
    Transform(String),
    /// An index was out of bounds.
    IndexOutOfBounds(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::RaggedRow {
                row,
                expected,
                found,
            } => write!(
                f,
                "row {row} has {found} values but the header declares {expected} conditions"
            ),
            MatrixError::Empty => write!(f, "matrix must have at least one gene and one condition"),
            MatrixError::DuplicateLabel(l) => write!(f, "duplicate label: {l:?}"),
            MatrixError::BadValue { row, col, token } => {
                write!(
                    f,
                    "cannot parse value at row {row}, column {col}: {token:?}"
                )
            }
            MatrixError::NonFinite { gene, cond } => {
                write!(
                    f,
                    "non-finite expression value at gene {gene}, condition {cond}"
                )
            }
            MatrixError::Transform(msg) => write!(f, "transform failed: {msg}"),
            MatrixError::IndexOutOfBounds(msg) => write!(f, "index out of bounds: {msg}"),
            MatrixError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for MatrixError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MatrixError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MatrixError {
    fn from(e: std::io::Error) -> Self {
        MatrixError::Io(e)
    }
}
