//! Empirical significance of mined clusters via permutation testing.
//!
//! GO enrichment (Table 2 of the paper) measures *biological* significance;
//! this module measures *statistical* significance against a data-driven
//! null: each gene's profile is independently permuted across conditions,
//! which preserves every per-gene value distribution (hence every `γ_i`)
//! while destroying all cross-gene co-regulation. Mining the permuted
//! matrices yields the null distribution of the largest cluster size; a
//! real cluster's empirical p-value is the fraction of null rounds whose
//! best cluster covers at least as many cells (with the standard `+1`
//! smoothing so p is never exactly zero).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use regcluster_core::{mine, MiningParams, RegCluster};
use regcluster_matrix::ExpressionMatrix;

/// Result of a permutation test.
#[derive(Debug, Clone, Serialize)]
pub struct SignificanceReport {
    /// Largest cluster (in cells) found in each permuted matrix; `0` when a
    /// permutation produced no cluster at all.
    pub null_max_cells: Vec<usize>,
    /// Empirical p-value per input cluster, in input order:
    /// `(1 + #{null ≥ cells}) / (1 + n_permutations)`.
    pub cluster_p: Vec<f64>,
}

/// Runs `n_permutations` row-shuffled null mining rounds and scores each of
/// `clusters` against the null distribution of maximum cluster size.
///
/// # Panics
///
/// Panics if `n_permutations` is zero (an empty null is meaningless) or if
/// the parameters fail validation inside the miner (they were presumably
/// already used to produce `clusters`).
pub fn permutation_significance(
    matrix: &ExpressionMatrix,
    params: &MiningParams,
    clusters: &[RegCluster],
    n_permutations: usize,
    seed: u64,
) -> SignificanceReport {
    assert!(n_permutations > 0, "need at least one permutation");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut null_max_cells = Vec::with_capacity(n_permutations);
    for _ in 0..n_permutations {
        let mut shuffled = matrix.clone();
        for g in 0..shuffled.n_genes() {
            shuffled.row_mut(g).shuffle(&mut rng);
        }
        let found = mine(&shuffled, params).expect("parameters already validated");
        null_max_cells.push(found.iter().map(RegCluster::n_cells).max().unwrap_or(0));
    }
    let cluster_p = clusters
        .iter()
        .map(|c| {
            let hits = null_max_cells.iter().filter(|&&n| n >= c.n_cells()).count();
            (1 + hits) as f64 / (1 + n_permutations) as f64
        })
        .collect();
    SignificanceReport {
        null_max_cells,
        cluster_p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A matrix with one strong planted affine family over all conditions.
    fn planted_matrix() -> ExpressionMatrix {
        let base = [0.0f64, 1.0, 2.2, 3.1, 4.3, 5.6, 6.4, 7.9];
        let mut rows: Vec<Vec<f64>> = (1..=6)
            .map(|k| base.iter().map(|&v| k as f64 * v).collect())
            .collect();
        // Deterministic pseudo-noise genes.
        for i in 0..24 {
            rows.push(
                (0..8)
                    .map(|j| ((i * 37 + j * 101 + 13) % 97) as f64 / 2.0)
                    .collect(),
            );
        }
        let genes = (0..rows.len()).map(|i| format!("g{i}")).collect();
        let conds = (0..8).map(|i| format!("c{i}")).collect();
        ExpressionMatrix::from_rows(genes, conds, rows).unwrap()
    }

    #[test]
    fn planted_cluster_is_significant() {
        let m = planted_matrix();
        let params = MiningParams::new(5, 6, 0.05, 0.05).unwrap();
        let clusters = mine(&m, &params).unwrap();
        assert!(!clusters.is_empty(), "the planted family must be mined");
        let report = permutation_significance(&m, &params, &clusters, 30, 9);
        // The largest real cluster must beat (almost) every null round.
        let best = clusters.iter().map(RegCluster::n_cells).max().unwrap();
        let best_idx = clusters.iter().position(|c| c.n_cells() == best).unwrap();
        assert!(
            report.cluster_p[best_idx] <= 2.0 / 31.0,
            "p = {} too large; null = {:?}",
            report.cluster_p[best_idx],
            report.null_max_cells
        );
    }

    #[test]
    fn null_preserves_per_gene_distributions() {
        // Sanity on the null model itself: a shuffled matrix has the same
        // per-gene multisets, hence the same γ_i under fraction-of-range.
        let m = planted_matrix();
        let mut shuffled = m.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for g in 0..shuffled.n_genes() {
            shuffled.row_mut(g).shuffle(&mut rng);
        }
        for g in 0..m.n_genes() {
            let mut a = m.row(g).to_vec();
            let mut b = shuffled.row(g).to_vec();
            a.sort_by(f64::total_cmp);
            b.sort_by(f64::total_cmp);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn p_values_are_smoothed_and_bounded() {
        let m = planted_matrix();
        let params = MiningParams::new(5, 6, 0.05, 0.05).unwrap();
        let clusters = mine(&m, &params).unwrap();
        let report = permutation_significance(&m, &params, &clusters, 10, 4);
        for &p in &report.cluster_p {
            assert!(p > 0.0 && p <= 1.0);
        }
        assert_eq!(report.null_max_cells.len(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one permutation")]
    fn zero_permutations_rejected() {
        let m = planted_matrix();
        let params = MiningParams::new(5, 6, 0.05, 0.05).unwrap();
        permutation_significance(&m, &params, &[], 0, 1);
    }
}
