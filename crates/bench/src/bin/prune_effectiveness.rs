//! Pruning-effectiveness experiment — which of the paper's §4 strategies
//! actually carries the search, measured instead of asserted.
//!
//! A `MetricsObserver` (crates/obs registry instruments) rides along a γ
//! sweep on the simulated yeast benchmark and reports, per run: nodes
//! entered, clusters emitted, and subtrees killed by each pruning rule —
//! the numbers the granular/fuzzy biclustering follow-ups use to justify
//! their heuristics, here for reg-cluster's own five rules. Expected
//! shape: as γ tightens, everything regulates everything, nodes explode,
//! and the MinG/coherence window tests (rules 1 and 4) carry the search.
//! The rule-2 counter stays at zero on this matrix — with thousands of
//! genes, the max-chain tables never starve a whole root below MinG;
//! they work *silently*, shrinking candidate and member sets before the
//! counted rules ever run (the MinC sweep shows the node count
//! collapsing 4 orders of magnitude while `min_conds` never fires).
//! Results: `results/prune_effectiveness.json` + a Prometheus snapshot
//! per run.
//!
//! Run with `--release`; pass `--quick` for a reduced matrix.

use regcluster_bench::{quick_mode, time, write_json, write_text};
use regcluster_core::metrics::{MINE_EMITTED_METRIC, MINE_NODES_METRIC, MINE_PRUNED_METRIC};
use regcluster_core::observer::PruneRule;
use regcluster_core::{mine_with_observer, MetricsObserver, MiningParams};
use regcluster_datagen::{yeast_like, YeastConfig};
use regcluster_obs::MetricsRegistry;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    gamma: f64,
    min_conds: usize,
    nodes: u64,
    emitted: u64,
    pruned: Vec<(String, u64)>,
    runtime_s: f64,
}

fn main() {
    let cfg = if quick_mode() {
        YeastConfig {
            n_genes: 800,
            n_modules: 6,
            ..YeastConfig::default()
        }
    } else {
        YeastConfig::default()
    };
    let data = yeast_like(&cfg).expect("feasible");
    println!(
        "pruning effectiveness on the simulated yeast matrix ({} × {}), ε = 1.0",
        data.matrix.n_genes(),
        data.matrix.n_conditions()
    );

    // Two sweeps: γ at MinC = 6 (the paper's setting) shows the workhorse
    // rules shifting between the index and the window tests; MinC at
    // γ = 0.05 pushes chains toward the 17-condition ceiling, where rule 2
    // starts starving whole roots instead of just trimming members.
    let sweeps: Vec<(f64, usize)> = [0.02, 0.05, 0.09]
        .iter()
        .map(|&g| (g, 6))
        .chain([8, 10, 12].iter().map(|&c| (0.05, c)))
        .collect();
    let mut points = Vec::new();
    println!(
        "\n{:>6} {:>5} {:>10} {:>8} {:>10} {:>10} {:>12} {:>10} {:>10} {:>8}",
        "γ",
        "MinC",
        "nodes",
        "emitted",
        "min_genes",
        "min_conds",
        "few_p_membs",
        "duplicate",
        "coherence",
        "time(s)"
    );
    for &(gamma, min_c) in &sweeps {
        // A fresh registry per run keeps each snapshot a single run's worth.
        let registry = MetricsRegistry::new();
        let mut observer = MetricsObserver::register(&registry);
        let params = MiningParams::new(20, min_c, gamma, 1.0).expect("valid parameters");
        let (result, secs) = time(|| mine_with_observer(&data.matrix, &params, &mut observer));
        let _ = result.expect("mining succeeds");

        let get = |name: &str, help: &str| registry.counter(name, help, &[]).get();
        let nodes = get(
            MINE_NODES_METRIC,
            "Enumeration-tree nodes entered (partial representative chains expanded).",
        );
        let emitted = get(
            MINE_EMITTED_METRIC,
            "Validated reg-clusters emitted by the enumeration.",
        );
        let pruned: Vec<(String, u64)> = PruneRule::ALL
            .iter()
            .map(|rule| {
                let c = registry.counter(
                    MINE_PRUNED_METRIC,
                    "Subtrees cut by each pruning strategy of the paper's section 4.",
                    &[("rule", rule.as_label())],
                );
                (rule.as_label().to_string(), c.get())
            })
            .collect();
        println!(
            "{:>6.2} {:>5} {:>10} {:>8} {:>10} {:>10} {:>12} {:>10} {:>10} {:>8.2}",
            gamma,
            min_c,
            nodes,
            emitted,
            pruned[0].1,
            pruned[1].1,
            pruned[2].1,
            pruned[3].1,
            pruned[4].1,
            secs
        );
        write_text(
            &format!("prune_effectiveness_gamma{gamma}_minc{min_c}.prom"),
            &registry.encode_prometheus(),
        );
        points.push(Point {
            gamma,
            min_conds: min_c,
            nodes,
            emitted,
            pruned,
            runtime_s: secs,
        });
    }

    write_json("prune_effectiveness.json", &points);
    println!(
        "\nsnapshot per run in results/prune_effectiveness_gamma*.prom; \
         triage recipe in docs/OBSERVABILITY.md"
    );
}
