//! Offline stub of serde's derive macros.
//!
//! Parses the item's token stream directly (no `syn`/`quote` available
//! offline) and emits `serde::Serialize` / `serde::Deserialize` impls in the
//! stub's `Value`-tree dialect. Supported item shapes — the only ones this
//! workspace derives on — are named-field structs, tuple structs (a
//! single-field newtype serializes transparently), and enums whose variants
//! are unit or tuple variants. Generic items are rejected with a compile
//! error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = parse_item(input);
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    code.parse()
        .expect("serde_derive stub generated invalid Rust")
}

/// Tokens of an item with attributes and visibility stripped.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic items are not supported (derive on `{name}`)");
    }

    match kind.as_str() {
        "struct" => parse_struct(name, &tokens, i),
        "enum" => parse_enum(name, &tokens, i),
        other => panic!("serde_derive stub: cannot derive on `{other}` items"),
    }
}

fn parse_struct(name: String, tokens: &[TokenTree], i: usize) -> Item {
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = split_top_level(g.stream())
                .into_iter()
                .map(|field| field_name(&field, &name))
                .collect();
            Item::NamedStruct { name, fields }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = split_top_level(g.stream()).len();
            Item::TupleStruct { name, arity }
        }
        other => panic!("serde_derive stub: unsupported struct body for `{name}`: {other:?}"),
    }
}

fn parse_enum(name: String, tokens: &[TokenTree], i: usize) -> Item {
    let Some(TokenTree::Group(g)) = tokens.get(i) else {
        panic!("serde_derive stub: expected enum body for `{name}`");
    };
    let variants = split_top_level(g.stream())
        .into_iter()
        .map(|variant| {
            let mut j = 0;
            skip_attrs_and_vis(&variant, &mut j);
            let vname = match &variant[j] {
                TokenTree::Ident(id) => id.to_string(),
                other => {
                    panic!("serde_derive stub: expected variant name in `{name}`, got {other}")
                }
            };
            let arity = match variant.get(j + 1) {
                None => 0,
                Some(TokenTree::Group(fields)) if fields.delimiter() == Delimiter::Parenthesis => {
                    split_top_level(fields.stream()).len()
                }
                Some(other) => panic!(
                    "serde_derive stub: only unit and tuple variants are supported \
                     (`{name}::{vname}` has {other})"
                ),
            };
            (vname, arity)
        })
        .collect();
    Item::Enum { name, variants }
}

/// Advances `i` past any `#[...]` attributes and a `pub` / `pub(...)` marker.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a comma-separated token stream on commas that sit outside any
/// `<...>` nesting (so `Option<usize>` stays one piece), dropping empties
/// from trailing commas.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut pieces = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                pieces.push(Vec::new());
                continue;
            }
            _ => {}
        }
        pieces.last_mut().unwrap().push(tt);
    }
    pieces.retain(|p| !p.is_empty());
    pieces
}

fn field_name(field: &[TokenTree], item: &str) -> String {
    let mut j = 0;
    skip_attrs_and_vis(field, &mut j);
    match &field[j] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected field name in `{item}`, got {other}"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_json_value(&self.{f}))")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_json_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_json_value(&self.{k})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, arity)| match arity {
                    0 => {
                        format!("{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),")
                    }
                    1 => format!(
                        "{name}::{vname}(x0) => ::serde::Value::Object(vec![\
                         (\"{vname}\".to_string(), ::serde::Serialize::to_json_value(x0))]),"
                    ),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_json_value(x{k})"))
                            .collect();
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                             (\"{vname}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            elems.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_json_value(v.field(\"{f}\")?)?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok({name}(::serde::Deserialize::from_json_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_json_value(&items[{k}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Array(items) if items.len() == {arity} => \
                                 Ok({name}({})),\n\
                             other => Err(::serde::DeError::expected(\
                                 \"array of {arity}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(vname, _)| format!("\"{vname}\" => Ok({name}::{vname}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity > 0)
                .map(|(vname, arity)| match arity {
                    1 => format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         ::serde::Deserialize::from_json_value(inner)?)),"
                    ),
                    n => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_json_value(&items[{k}])?"))
                            .collect();
                        format!(
                            "\"{vname}\" => match inner {{\n\
                                 ::serde::Value::Array(items) if items.len() == {n} => \
                                     Ok({name}::{vname}({})),\n\
                                 other => Err(::serde::DeError::expected(\
                                     \"array of {n}\", other)),\n\
                             }},",
                            elems.join(", ")
                        )
                    }
                })
                .collect();
            let inner_bind = if data_arms.is_empty() {
                "_inner"
            } else {
                "inner"
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => Err(::serde::DeError(format!(\
                                     \"unknown {name} variant {{other}}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                                 let (vname, {inner_bind}) = &pairs[0];\n\
                                 match vname.as_str() {{\n\
                                     {}\n\
                                     other => Err(::serde::DeError(format!(\
                                         \"unknown {name} variant {{other}}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::DeError::expected(\"{name} value\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    }
}
