//! Dependency-free HTTP/1.1 plumbing for the cluster control plane.
//!
//! Unlike the serving layer's GET-only pool (`regcluster-cli::serve`),
//! the coordinator needs request bodies: shard uploads POST whole `.rcs`
//! files. Control-plane traffic is a handful of workers heartbeating, so
//! a thread-per-connection acceptor is plenty — the fixed-pool + shed
//! machinery of the read path would be over-engineering here.
//!
//! Every connection is one request/response exchange (`Connection:
//! close` semantics), which keeps both ends trivially correct across
//! coordinator restarts: a worker never has to reason about a half-dead
//! keep-alive socket.
//!
//! # Fault injection
//!
//! Both ends evaluate network failpoints so the harness can script
//! partitions, slow links and torn responses without touching the
//! kernel: the client consults `cluster::http_request` before sending,
//! the server consults `cluster::http_response` before answering (and
//! `cluster::upload_response` additionally for `POST /shard/…`, so a
//! scenario can garble exactly the upload acknowledgment). A `drop`
//! closes the connection unanswered; a `garble` sends a truncated,
//! corrupted payload — the peer sees an I/O error and retries.
//!
//! # Shedding
//!
//! The acceptor bounds in-flight connections; past the cap it answers
//! `503` with `Retry-After: 1` instead of queueing, and clients feed
//! that hint into their [`Backoff`](crate::Backoff).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use regcluster_failpoint::NetFault;
use regcluster_obs::Counter;

/// Largest accepted request body (a shard upload), 256 MiB.
const MAX_BODY: usize = 256 << 20;

/// Per-socket read/write timeout, so a hung peer cannot wedge a
/// connection thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Default in-flight connection cap before the server sheds with 503.
/// Control-plane traffic is a handful of workers; anything past this is
/// a storm worth pushing back on.
pub const MAX_INFLIGHT: usize = 64;

/// `Retry-After` seconds sent with a shed 503.
const SHED_RETRY_AFTER_SECS: u64 = 1;

/// One parsed inbound request.
pub struct Request {
    /// `GET` or `POST` (anything else is rejected with 405).
    pub method: String,
    /// Request path, e.g. `/lease/acquire`.
    pub path: String,
    /// Raw body bytes (empty for GET).
    pub body: Vec<u8>,
}

/// One outbound response.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// When set, a `Retry-After: <secs>` header telling the client how
    /// long to back off (shed 503s set this).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response from an already-encoded document.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            retry_after: None,
        }
    }

    /// A shed response: `503` carrying `Retry-After: retry_after_secs`.
    pub fn unavailable(retry_after_secs: u64) -> Self {
        Response {
            retry_after: Some(retry_after_secs),
            ..Response::text(503, "overloaded; retry later")
        }
    }
}

/// One parsed client-side response: what [`http_request`] returns.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Parsed `Retry-After` header, when the server sent one — feed it
    /// to [`Backoff::sleep_hinted`](crate::Backoff::sleep_hinted).
    pub retry_after: Option<Duration>,
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A running control-plane HTTP server. Dropping the handle does **not**
/// stop it; call [`shutdown`](HttpServer::shutdown).
pub struct HttpServer {
    port: u16,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    inflight: Arc<AtomicUsize>,
}

impl HttpServer {
    /// Binds `127.0.0.1:port` (0 picks an ephemeral port) and serves
    /// every connection on its own thread through `handler`.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the port cannot be bound.
    pub fn start<F>(port: u16, handler: F) -> std::io::Result<Self>
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        Self::start_capped(port, MAX_INFLIGHT, None, handler)
    }

    /// [`start`](HttpServer::start) with an explicit in-flight connection
    /// cap: a connection arriving while `max_inflight` are already being
    /// served is answered `503` + `Retry-After` instead of queued, and
    /// `shed_counter` (when given) counts those rejections.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the port cannot be bound.
    pub fn start_capped<F>(
        port: u16,
        max_inflight: usize,
        shed_counter: Option<Counter>,
        handler: F,
    ) -> std::io::Result<Self>
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let port = listener.local_addr()?.port();
        let stop = Arc::new(AtomicBool::new(false));
        let handler = Arc::new(handler);
        let stop_accept = Arc::clone(&stop);
        let inflight = Arc::new(AtomicUsize::new(0));
        let inflight_gauge = Arc::clone(&inflight);
        let max_inflight = max_inflight.max(1);
        let acceptor = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let shed = inflight.fetch_add(1, Ordering::SeqCst) >= max_inflight;
                if shed {
                    if let Some(c) = &shed_counter {
                        c.inc();
                    }
                }
                let handler = Arc::clone(&handler);
                let inflight = Arc::clone(&inflight);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &*handler, shed);
                    inflight.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        Ok(HttpServer {
            port,
            stop,
            acceptor: Some(acceptor),
            inflight: inflight_gauge,
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Stops accepting, joins the acceptor thread, then waits (bounded)
    /// for in-flight connections to finish — so a response still being
    /// written (e.g. the ack to the very request that triggered the
    /// shutdown, possibly crawling through an injected network delay)
    /// reaches its client before the process exits.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while self.inflight.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

fn serve_connection<F>(stream: TcpStream, handler: &F, shed: bool) -> std::io::Result<()>
where
    F: Fn(&Request) -> Response,
{
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    // The request is still drained when shedding, so the 503 reliably
    // reaches a client mid-way through writing its body.
    let (response, upload) = match read_request(&mut reader) {
        Ok(_) if shed => (Response::unavailable(SHED_RETRY_AFTER_SECS), false),
        Ok(req) => {
            let upload = req.method == "POST" && req.path.starts_with("/shard/");
            (handler(&req), upload)
        }
        Err(status) => (Response::text(status, reason(status)), false),
    };
    let mut fault = regcluster_failpoint::net("cluster::http_response");
    if fault == NetFault::Pass && upload {
        fault = regcluster_failpoint::net("cluster::upload_response");
    }
    match fault {
        NetFault::Pass => write_response(stream, &response),
        // Accept-then-close: the peer sees an unanswered connection.
        NetFault::Drop => Ok(()),
        NetFault::Garble => write_garbled(stream, &response),
    }
}

/// Writes a torn response: the head promises the full `Content-Length`,
/// but only half the body follows — with its first byte flipped — before
/// the connection closes. The client's bounded read fails cleanly.
fn write_garbled(mut stream: TcpStream, response: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    let mut torn = response.body[..response.body.len() / 2].to_vec();
    if let Some(b) = torn.first_mut() {
        *b ^= 0xff;
    }
    stream.write_all(&torn)?;
    stream.flush()
}

/// Parses one request off `reader`; `Err` carries the status to reject
/// with.
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, u16> {
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|_| 400u16)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(400u16)?.to_string();
    let path = parts.next().ok_or(400u16)?.to_string();
    if method != "GET" && method != "POST" {
        return Err(405u16);
    }
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|_| 400u16)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().map_err(|_| 400u16)?;
        }
    }
    if content_length > MAX_BODY {
        return Err(413u16);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|_| 400u16)?;
    Ok(Request { method, path, body })
}

fn write_response(mut stream: TcpStream, response: &Response) -> std::io::Result<()> {
    let retry_after = match response.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        retry_after
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Performs one blocking request against `addr` (`host:port`), returning
/// the parsed [`HttpReply`]. Bodies are sent as
/// `application/octet-stream`; the peer's declared `Content-Length`
/// bounds the read.
///
/// # Errors
///
/// [`std::io::Error`] for connect/read/write failures, a malformed
/// response, or an injected `cluster::http_request` network fault.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<HttpReply> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/octet-stream\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    match regcluster_failpoint::net("cluster::http_request") {
        NetFault::Pass => {}
        // Connect-then-vanish: the peer sees an accepted connection that
        // never carries a request.
        NetFault::Drop => {
            let _ = TcpStream::connect(addr)?;
            return Err(std::io::Error::other("injected request drop"));
        }
        // Torn request: half the head, then the socket closes. The peer
        // answers 400 into the void.
        NetFault::Garble => {
            let mut stream = TcpStream::connect(addr)?;
            let _ = stream.write_all(&head.as_bytes()[..head.len() / 2]);
            return Err(std::io::Error::other("injected request garble"));
        }
    }
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("malformed status line {status_line:?}")))?;
    let mut content_length: Option<usize> = None;
    let mut retry_after: Option<Duration> = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let lower = header.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:").map(str::trim) {
            content_length = Some(
                v.parse()
                    .map_err(|_| std::io::Error::other("bad content-length"))?,
            );
        }
        if let Some(v) = lower.strip_prefix("retry-after:").map(str::trim) {
            retry_after = v.parse::<u64>().ok().map(Duration::from_secs);
        }
    }
    let body = match content_length {
        Some(n) if n <= MAX_BODY => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            buf
        }
        Some(n) => {
            return Err(std::io::Error::other(format!(
                "response body {n} too large"
            )));
        }
        // Connection-close framing: read to EOF.
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    Ok(HttpReply {
        status,
        body,
        retry_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Failpoints are process-global: the fault-injection test below arms
    // response drops that would hit any concurrently-running HTTP test,
    // so every test in this module serializes on this.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn round_trips_get_and_post() {
        let _guard = serial();
        let server = HttpServer::start(0, |req| match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/ping") => Response::text(200, "pong"),
            ("POST", "/echo") => Response {
                status: 200,
                content_type: "application/octet-stream",
                body: req.body.clone(),
                retry_after: None,
            },
            _ => Response::text(404, "nope"),
        })
        .unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let reply = http_request(&addr, "GET", "/ping", &[]).unwrap();
        assert_eq!(
            (reply.status, reply.body.as_slice()),
            (200, b"pong".as_slice())
        );
        assert_eq!(reply.retry_after, None);
        let payload = vec![7u8; 100_000];
        let reply = http_request(&addr, "POST", "/echo", &payload).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, payload);
        let reply = http_request(&addr, "GET", "/missing", &[]).unwrap();
        assert_eq!(reply.status, 404);
        server.shutdown();
    }

    #[test]
    fn rejects_unknown_methods() {
        let _guard = serial();
        let server = HttpServer::start(0, |_| Response::text(200, "ok")).unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let reply = http_request(&addr, "DELETE", "/x", &[]).unwrap();
        assert_eq!(reply.status, 405);
        server.shutdown();
    }

    #[test]
    fn retry_after_round_trips_on_a_shed_style_response() {
        let _guard = serial();
        let server = HttpServer::start(0, |_| Response::unavailable(7)).unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let reply = http_request(&addr, "GET", "/x", &[]).unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(reply.retry_after, Some(Duration::from_secs(7)));
        server.shutdown();
    }

    #[test]
    fn overloaded_server_sheds_with_retry_after() {
        let _guard = serial();
        // Cap of 1 with a handler that parks: the second concurrent
        // request must be shed, not queued.
        let gate = Arc::new(AtomicBool::new(false));
        let gate_handler = Arc::clone(&gate);
        let server = HttpServer::start_capped(0, 1, None, move |_| {
            while !gate_handler.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(5));
            }
            Response::text(200, "slow ok")
        })
        .unwrap();
        let addr = format!("127.0.0.1:{}", server.port());
        let addr2 = addr.clone();
        let parked = std::thread::spawn(move || http_request(&addr2, "GET", "/slow", &[]));
        // Wait for the parked request to occupy the only slot.
        std::thread::sleep(Duration::from_millis(100));
        let reply = http_request(&addr, "GET", "/shed-me", &[]).unwrap();
        assert_eq!(reply.status, 503);
        assert!(
            reply.retry_after.is_some(),
            "shed 503 must carry Retry-After"
        );
        gate.store(true, Ordering::SeqCst);
        assert_eq!(parked.join().unwrap().unwrap().status, 200);
        server.shutdown();
    }

    #[test]
    fn injected_response_faults_surface_as_client_errors() {
        let _guard = serial();
        let server = HttpServer::start(0, |req| match req.path.as_str() {
            p if p.starts_with("/shard/") => Response::text(200, "staged"),
            _ => Response::text(200, "ok"),
        })
        .unwrap();
        let addr = format!("127.0.0.1:{}", server.port());

        regcluster_failpoint::configure("cluster::http_response=drop@1").unwrap();
        assert!(
            http_request(&addr, "GET", "/x", &[]).is_err(),
            "dropped response"
        );
        assert_eq!(http_request(&addr, "GET", "/x", &[]).unwrap().status, 200);

        // Garble only the upload acknowledgment: plain requests pass.
        regcluster_failpoint::configure("cluster::upload_response=garble@1").unwrap();
        assert_eq!(http_request(&addr, "GET", "/x", &[]).unwrap().status, 200);
        assert!(
            http_request(&addr, "POST", "/shard/0/1", b"x").is_err(),
            "garbled upload ack"
        );
        assert_eq!(
            http_request(&addr, "POST", "/shard/0/1", b"x")
                .unwrap()
                .status,
            200
        );

        regcluster_failpoint::configure("cluster::http_request=drop@1").unwrap();
        assert!(
            http_request(&addr, "GET", "/x", &[]).is_err(),
            "dropped request"
        );

        regcluster_failpoint::clear();
        server.shutdown();
    }
}
