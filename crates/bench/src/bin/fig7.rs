//! Figure 7 — "Evaluation of Efficiency on Synthetic Datasets".
//!
//! Reproduces the paper's three scalability panels. Generator defaults are
//! the paper's (`#g = 3000`, `#cond = 30`, `#clus = 30`, clusters of average
//! dimensionality 6 with `0.01 · #g` genes, planted at `γ = 0.15`, `ε = 0`);
//! mining uses the paper's Figure 7 parameters `MinG = 0.01 · #g`,
//! `MinC = 6`, `γ = 0.1`, `ε = 0.01`. Each panel varies one generator input
//! while holding the other two at their defaults:
//!
//! * panel (a): runtime vs number of genes — the paper reports slightly
//!   more than linear growth;
//! * panel (b): runtime vs number of conditions — worse than linear (the
//!   enumeration examines condition permutations);
//! * panel (c): runtime vs number of embedded clusters — approximately
//!   linear.
//!
//! Run with `--quick` for a reduced sweep. Results are written to
//! `results/fig7_*.json`.

use regcluster_bench::plot::{line_chart, Series};
use regcluster_bench::{quick_mode, series_table, time, write_json, write_text, SeriesPoint};
use regcluster_core::{mine, MiningParams};
use regcluster_datagen::{generate, SyntheticConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Fig7Output {
    panel: &'static str,
    mining_gamma: f64,
    mining_epsilon: f64,
    repetitions: usize,
    points: Vec<SeriesPoint>,
}

const MINING_GAMMA: f64 = 0.1;
const MINING_EPSILON: f64 = 0.01;

fn run_point(config: &SyntheticConfig, reps: usize) -> SeriesPoint {
    let mut total = 0.0;
    let mut n_clusters = 0;
    for rep in 0..reps {
        let mut cfg = config.clone();
        cfg.seed = config.seed + rep as u64;
        let data = generate(&cfg).expect("generator config is feasible");
        let min_g = ((0.01 * cfg.n_genes as f64).round() as usize).max(2);
        let params =
            MiningParams::new(min_g, 6, MINING_GAMMA, MINING_EPSILON).expect("mining params valid");
        let (clusters, secs) = time(|| mine(&data.matrix, &params).expect("mining succeeds"));
        total += secs;
        n_clusters = clusters.len();
    }
    SeriesPoint {
        x: 0.0,
        runtime_s: total / reps as f64,
        n_clusters,
    }
}

fn sweep(
    panel: &'static str,
    header: &str,
    xs: &[usize],
    reps: usize,
    make: impl Fn(usize) -> SyntheticConfig,
) {
    let mut points = Vec::new();
    for &x in xs {
        let cfg = make(x);
        let mut p = run_point(&cfg, reps);
        p.x = x as f64;
        eprintln!(
            "  {panel}: x = {x}: {:.3}s, {} clusters",
            p.runtime_s, p.n_clusters
        );
        points.push(p);
    }
    println!("\nFigure 7 panel — runtime vs {header}");
    print!("{}", series_table(header, &points));
    let curve = Series::solid(
        "reg-cluster",
        points.iter().map(|p| (p.x, p.runtime_s)).collect(),
    );
    write_text(
        &format!("fig7_{panel}.svg"),
        &line_chart(
            &format!("Figure 7: runtime vs {header}"),
            header,
            "runtime (s)",
            &[curve],
        ),
    );
    write_json(
        &format!("fig7_{panel}.json"),
        &Fig7Output {
            panel,
            mining_gamma: MINING_GAMMA,
            mining_epsilon: MINING_EPSILON,
            repetitions: reps,
            points,
        },
    );
}

fn main() {
    let quick = quick_mode();
    let reps = if quick { 1 } else { 3 };
    let (genes_axis, conds_axis, clus_axis): (Vec<usize>, Vec<usize>, Vec<usize>) = if quick {
        (vec![1000, 2000, 3000], vec![20, 30], vec![10, 30])
    } else {
        (
            vec![1000, 2000, 3000, 4000, 5000, 7500, 10000],
            vec![10, 15, 20, 25, 30, 35, 40],
            vec![10, 20, 30, 40, 50, 60],
        )
    };

    println!("reg-cluster efficiency on synthetic data (Figure 7)");
    println!(
        "defaults: #g = 3000, #cond = 30, #clus = 30; MinG = 0.01·#g, MinC = 6, γ = {MINING_GAMMA}, ε = {MINING_EPSILON}; {reps} repetition(s) per point"
    );

    sweep("genes", "#genes", &genes_axis, reps, |g| SyntheticConfig {
        n_genes: g,
        ..SyntheticConfig::default()
    });
    sweep("conds", "#conditions", &conds_axis, reps, |c| {
        SyntheticConfig {
            n_conds: c,
            ..SyntheticConfig::default()
        }
    });
    sweep("clusters", "#clusters", &clus_axis, reps, |k| {
        SyntheticConfig {
            n_clusters: k,
            ..SyntheticConfig::default()
        }
    });
}
