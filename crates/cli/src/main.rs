//! The `regcluster` binary: a thin wrapper around the library.

use std::process::ExitCode;

fn main() -> ExitCode {
    // Fault-injection sites (dev/test only): honored when the FAILPOINTS
    // env var is set, a handful of relaxed atomic loads otherwise.
    if let Err(e) = regcluster_failpoint::init_from_env() {
        eprintln!("error: bad FAILPOINTS spec: {e}");
        return ExitCode::FAILURE;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "baseline") {
        eprintln!(
            "warning: `baseline` is deprecated and will be removed; use \
             `mine --engine <NAME>` (see `regcluster help`)"
        );
    }
    let command = match regcluster_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try `regcluster help`");
            return ExitCode::FAILURE;
        }
    };
    match regcluster_cli::run(&command) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
