//! The reg-cluster miner behind the [`BiclusterEngine`] contract.

use regcluster_core::{
    mine_prepared_to_sink, BiclusterEngine, ClusterSink, CoreError, EngineConfig, EngineReport,
    MineControl, Miner, MiningParams, SyncMineObserver,
};
use regcluster_matrix::ExpressionMatrix;

/// The paper's shifting-and-scaling miner as an engine.
///
/// This is a thin wrapper over [`Miner`] + [`mine_prepared_to_sink`]: it
/// streams every validated reg-cluster in canonical depth-first order.
/// The post-filters carried by [`MiningParams`] (`maximal_only`,
/// `max_clusters`) need the full result set and therefore do **not** apply
/// on the streaming path — collect and run
/// [`finalize_clusters`](regcluster_core::finalize_clusters) downstream,
/// exactly as the CLI's bespoke `mine` path does.
#[derive(Debug, Clone)]
pub struct RegClusterEngine {
    params: MiningParams,
    threads: usize,
}

impl RegClusterEngine {
    /// Creates the engine.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] when `params` fail validation
    /// or `threads` is zero.
    pub fn new(params: MiningParams, threads: usize) -> Result<Self, CoreError> {
        params.validate()?;
        if threads == 0 {
            return Err(CoreError::InvalidParams("threads must be ≥ 1".into()));
        }
        Ok(Self { params, threads })
    }

    /// The mining parameters this engine runs with.
    pub fn params(&self) -> &MiningParams {
        &self.params
    }
}

impl BiclusterEngine for RegClusterEngine {
    fn name(&self) -> &str {
        "reg-cluster"
    }

    fn params_json(&self) -> String {
        serde_json::to_string(&self.params).expect("MiningParams always serializes")
    }

    fn run(
        &self,
        matrix: &ExpressionMatrix,
        sink: &dyn ClusterSink,
        control: &MineControl,
        observer: &dyn SyncMineObserver,
    ) -> Result<EngineReport, CoreError> {
        let miner = Miner::new(matrix, &self.params)?;
        let config = EngineConfig::new(self.threads);
        let report = mine_prepared_to_sink(&miner, &config, control, observer, sink)?;
        Ok(EngineReport {
            n_emitted: report.stats.emitted,
            truncated: report.truncated,
            stopped_by_sink: report.stopped_by_sink,
            stats: Some(report.stats),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcluster_core::{NoopObserver, VecSink};

    #[test]
    fn mines_the_running_example_through_the_trait() {
        let matrix = regcluster_datagen::running_example();
        let engine = RegClusterEngine::new(MiningParams::new(3, 5, 0.15, 0.1).unwrap(), 1).unwrap();
        let sink = VecSink::new();
        let report = engine
            .run(&matrix, &sink, &MineControl::new(), &NoopObserver)
            .unwrap();
        let clusters = sink.into_clusters();
        assert_eq!(report.n_emitted, 1);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].chain, vec![6, 8, 4, 0, 2]);
        assert_eq!(clusters[0].p_members, vec![0, 2]);
        assert_eq!(clusters[0].n_members, vec![1]);
        assert!(!report.truncated);
        assert!(report.stats.is_some());
    }

    #[test]
    fn precancelled_control_truncates() {
        let matrix = regcluster_datagen::running_example();
        let engine = RegClusterEngine::new(MiningParams::new(3, 5, 0.15, 0.1).unwrap(), 1).unwrap();
        let control = MineControl::new();
        control.cancel();
        let sink = VecSink::new();
        let report = engine.run(&matrix, &sink, &control, &NoopObserver).unwrap();
        assert!(report.truncated);
    }

    #[test]
    fn invalid_params_are_rejected_at_construction() {
        assert!(RegClusterEngine::new(MiningParams::new(3, 5, 0.15, 0.1).unwrap(), 0).is_err());
    }
}
