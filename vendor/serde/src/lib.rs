//! Offline stub of the `serde` facade.
//!
//! Serialization goes through an owned JSON-like [`Value`] tree rather than
//! serde's visitor architecture: [`Serialize`] renders a value into a
//! [`Value`], [`Deserialize`] rebuilds one from it. `serde_json` (the sibling
//! stub) adds the text layer. The derive macros (re-exported behind the
//! `derive` feature) generate these impls for the struct/enum shapes the
//! workspace uses.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number without a fractional part.
    Int(i128),
    /// JSON number with a fractional part or exponent.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds an error describing an unexpected value shape.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {got:?}"))
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup; `Value::Null` when the key is absent (so that
    /// `Option` fields tolerate missing keys).
    pub fn field(&self, key: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(pairs) => Ok(pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL)),
            other => Err(DeError::expected("object", other)),
        }
    }
}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    /// The rendered document tree.
    fn to_json_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the document tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape does not match `Self`.
    fn from_json_value(v: &Value) -> Result<Self, DeError>;
}

// A `Value` serializes as itself — this is what lets callers round-trip
// arbitrary JSON documents (e.g. store metadata with keys from a future
// format version) through the text layer without knowing their shape.
impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range"))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_int!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        f64::from_json_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($i),+].len();
                        if items.len() != expected {
                            return Err(DeError(format!(
                                "expected array of {expected}, got {}", items.len()
                            )));
                        }
                        Ok(($($t::from_json_value(&items[$i])?,)+))
                    }
                    other => Err(DeError::expected("array", other)),
                }
            }
        }
    )*};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl<K: Serialize + fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K: Serialize + fmt::Display, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_json_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(usize::from_json_value(&42usize.to_json_value()), Ok(42));
        assert_eq!(f64::from_json_value(&1.5f64.to_json_value()), Ok(1.5));
        assert_eq!(bool::from_json_value(&true.to_json_value()), Ok(true));
        let v: Vec<usize> = vec![1, 2, 3];
        assert_eq!(Vec::<usize>::from_json_value(&v.to_json_value()), Ok(v));
        let o: Option<usize> = None;
        assert_eq!(Option::<usize>::from_json_value(&o.to_json_value()), Ok(o));
        let t = (3usize, 4usize);
        assert_eq!(<(usize, usize)>::from_json_value(&t.to_json_value()), Ok(t));
    }

    #[test]
    fn missing_object_field_reads_as_null() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.field("b"), Ok(&Value::Null));
        assert_eq!(
            Option::<usize>::from_json_value(v.field("b").unwrap()),
            Ok(None)
        );
        assert!(usize::from_json_value(v.field("b").unwrap()).is_err());
    }
}
