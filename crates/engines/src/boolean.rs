//! Boolean-reasoning extraction of shifting patterns (after Michalak &
//! Aguilar-Ruiz, *Boolean reasoning-based biclustering for
//! shifting-pattern extraction*, arXiv:2104.12493).
//!
//! The original casts bicluster induction as prime-implicant search on a
//! discernibility function: two genes are indiscernible on a column set
//! when their expression differences agree there, and every maximal
//! indiscernible block is a shifting pattern. This implementation realizes
//! the same reasoning directly on the Boolean agreement structure:
//!
//! 1. **Discretization** — fix a base column `j` and quantize each cell
//!    against it, `K[g][c] = round((d_gc − d_gj) / δ)`. Two genes carry the
//!    same Boolean "item" at column `c` exactly when their quantized keys
//!    agree, which bounds their pairwise pScore by `2δ`.
//! 2. **Partition refinement** — depth-first search over column sets in
//!    ascending order starting at `j` (any pattern is rooted at its lowest
//!    column): extending a gene set with column `c` partitions it into
//!    agreement groups, each a child state. A state is emitted only when no
//!    further column keeps its full gene set — the closed / prime blocks.
//! 3. **Maximality filter** — blocks found from different bases may nest;
//!    [`retain_maximal`] keeps only the maximal ones.
//!
//! The result is a deterministic, dependency-free miner for *pure
//! shifting* patterns with a tolerance guarantee: every reported cluster
//! is a `2δ`-pCluster (verified in the tests), found through Boolean
//! agreement reasoning rather than pairwise MDS enumeration.

use regcluster_baselines::{retain_maximal, Bicluster};
use regcluster_core::{
    BiclusterEngine, ClusterSink, CoreError, EngineReport, MineControl, MiningStats, RegCluster,
    SyncMineObserver,
};
use regcluster_matrix::ExpressionMatrix;

/// Parameters of the Boolean-reasoning shifting-pattern extractor.
#[derive(Debug, Clone, PartialEq)]
pub struct BooleanParams {
    /// Quantization step δ: differences are binned to multiples of δ, so
    /// members of a reported pattern agree pairwise within `2δ`.
    pub delta: f64,
    /// Minimum genes per pattern.
    pub min_genes: usize,
    /// Minimum columns per pattern.
    pub min_conds: usize,
    /// Bound on DFS states visited across all base columns (a completeness
    /// budget; the run reports `truncated` when it is exhausted).
    pub state_budget: usize,
}

impl Default for BooleanParams {
    fn default() -> Self {
        Self {
            delta: 0.1,
            min_genes: 2,
            min_conds: 2,
            state_budget: 100_000,
        }
    }
}

/// The Boolean-reasoning shifting-pattern extractor as an engine.
#[derive(Debug, Clone)]
pub struct BooleanEngine {
    params: BooleanParams,
}

impl BooleanEngine {
    /// Creates the engine.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] on out-of-domain parameters.
    pub fn new(params: BooleanParams) -> Result<Self, CoreError> {
        if !(params.delta.is_finite() && params.delta > 0.0) {
            return Err(CoreError::InvalidParams(format!(
                "delta must be finite and > 0, got {}",
                params.delta
            )));
        }
        if params.min_genes < 2 || params.min_conds < 2 {
            return Err(CoreError::InvalidParams(
                "patterns need ≥ 2 genes and ≥ 2 columns".into(),
            ));
        }
        Ok(Self { params })
    }
}

impl BiclusterEngine for BooleanEngine {
    fn name(&self) -> &str {
        "boolean"
    }

    fn params_json(&self) -> String {
        format!(
            "{{\"delta\":{},\"min_genes\":{},\"min_conds\":{},\"state_budget\":{}}}",
            self.params.delta,
            self.params.min_genes,
            self.params.min_conds,
            self.params.state_budget
        )
    }

    fn run(
        &self,
        matrix: &ExpressionMatrix,
        sink: &dyn ClusterSink,
        control: &MineControl,
        observer: &dyn SyncMineObserver,
    ) -> Result<EngineReport, CoreError> {
        let p = &self.params;
        let n_genes = matrix.n_genes();
        let n_conds = matrix.n_conditions();
        let mut stats = MiningStats::default();
        let mut truncated = control.is_cancelled();
        let mut out: Vec<Bicluster> = Vec::new();
        let mut budget = p.state_budget;

        if !truncated && n_genes >= p.min_genes && n_conds >= p.min_conds {
            'bases: for j in 0..n_conds {
                if control.is_cancelled() {
                    truncated = true;
                    break;
                }
                // Quantized difference keys relative to base column j.
                let keys: Vec<Vec<i64>> = (0..n_genes)
                    .map(|g| {
                        let row = matrix.row(g);
                        (0..n_conds)
                            .map(|c| ((row[c] - row[j]) / p.delta).round() as i64)
                            .collect()
                    })
                    .collect();
                // DFS over ascending column sets rooted at j. State:
                // (last column, column set, agreeing gene set).
                let mut stack: Vec<(usize, Vec<usize>, Vec<usize>)> =
                    vec![(j, vec![j], (0..n_genes).collect())];
                while let Some((last, cols, genes)) = stack.pop() {
                    if budget == 0 || control.is_cancelled() {
                        truncated = true;
                        break 'bases;
                    }
                    budget -= 1;
                    stats.nodes += 1;
                    stats.max_depth = stats.max_depth.max(cols.len());
                    observer.node_entered(&cols, genes.len(), 0);
                    let mut kept_whole = false;
                    // `c` indexes every gene's key row, not one slice, so
                    // an iterator rewrite would obscure the partitioning.
                    #[allow(clippy::needless_range_loop)]
                    for c in last + 1..n_conds {
                        // Partition the gene set by agreement at column c.
                        let mut groups: Vec<(i64, Vec<usize>)> = Vec::new();
                        for &g in &genes {
                            let k = keys[g][c];
                            match groups.iter_mut().find(|(key, _)| *key == k) {
                                Some((_, members)) => members.push(g),
                                None => groups.push((k, vec![g])),
                            }
                        }
                        for (_, group) in groups {
                            if group.len() < p.min_genes {
                                continue;
                            }
                            if group.len() == genes.len() {
                                kept_whole = true;
                            }
                            let mut next = cols.clone();
                            next.push(c);
                            stack.push((c, next, group));
                        }
                    }
                    // Closed block: no later column keeps the whole set.
                    if !kept_whole && cols.len() >= p.min_conds && genes.len() >= p.min_genes {
                        out.push(Bicluster::new(genes, cols));
                    }
                }
            }
        }

        let mut maximal = retain_maximal(out);
        maximal.sort_by(|a, b| {
            (b.n_genes() * b.n_conds())
                .cmp(&(a.n_genes() * a.n_conds()))
                .then_with(|| a.genes.cmp(&b.genes))
                .then_with(|| a.conds.cmp(&b.conds))
        });

        let mut stopped = false;
        for bc in maximal {
            let cluster = RegCluster {
                chain: bc.conds,
                p_members: bc.genes,
                n_members: Vec::new(),
            };
            observer.cluster_emitted(&cluster);
            stats.emitted += 1;
            if !sink.accept(cluster) {
                stopped = true;
                break;
            }
        }
        Ok(EngineReport {
            n_emitted: stats.emitted,
            truncated,
            stopped_by_sink: stopped,
            stats: Some(stats),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcluster_core::{NoopObserver, VecSink};

    fn run_engine(m: &ExpressionMatrix, params: BooleanParams) -> (EngineReport, Vec<RegCluster>) {
        let engine = BooleanEngine::new(params).unwrap();
        let sink = VecSink::new();
        let report = engine
            .run(m, &sink, &MineControl::new(), &NoopObserver)
            .unwrap();
        (report, sink.into_clusters())
    }

    #[test]
    fn finds_planted_shifting_family() {
        let base = [1.0f64, 4.0, 2.0, 8.0, 5.0];
        let rows: Vec<Vec<f64>> = vec![
            base.to_vec(),
            base.iter().map(|v| v + 3.0).collect(),
            base.iter().map(|v| v - 2.0).collect(),
            vec![9.0, 0.0, 7.0, 1.0, 3.0], // noise
        ];
        let m = ExpressionMatrix::from_rows(
            (0..4).map(|i| format!("g{i}")).collect(),
            (0..5).map(|i| format!("c{i}")).collect(),
            rows,
        )
        .unwrap();
        let (report, clusters) = run_engine(
            &m,
            BooleanParams {
                delta: 0.01,
                min_genes: 3,
                min_conds: 5,
                ..Default::default()
            },
        );
        assert!(!report.truncated);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].p_members, vec![0, 1, 2]);
        assert_eq!(clusters[0].chain, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn every_output_is_a_2delta_pcluster_and_maximal() {
        // Deterministic pseudo-random matrix: verify the tolerance
        // guarantee and maximality of everything reported.
        let delta = 0.7;
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|i| {
                (0..6)
                    .map(|j| (((i * 31 + j * 17 + 5) % 23) as f64) / 2.3)
                    .collect()
            })
            .collect();
        let m = ExpressionMatrix::from_rows(
            (0..8).map(|i| format!("g{i}")).collect(),
            (0..6).map(|i| format!("c{i}")).collect(),
            rows,
        )
        .unwrap();
        let (report, clusters) = run_engine(
            &m,
            BooleanParams {
                delta,
                min_genes: 2,
                min_conds: 2,
                ..Default::default()
            },
        );
        assert!(!report.truncated);
        assert!(!clusters.is_empty());
        for cl in &clusters {
            for (ai, &i) in cl.p_members.iter().enumerate() {
                for &j in &cl.p_members[ai + 1..] {
                    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                    for &c in &cl.chain {
                        let d = m.value(i, c) - m.value(j, c);
                        lo = lo.min(d);
                        hi = hi.max(d);
                    }
                    assert!(
                        hi - lo <= 2.0 * delta + 1e-9,
                        "pair ({i},{j}) spread {}",
                        hi - lo
                    );
                }
            }
        }
        for (i, a) in clusters.iter().enumerate() {
            for (j, b) in clusters.iter().enumerate() {
                if i != j {
                    let genes_sub = a.p_members.iter().all(|g| b.p_members.contains(g));
                    let conds_sub = a.chain.iter().all(|c| b.chain.contains(c));
                    assert!(!(genes_sub && conds_sub), "cluster {i} ⊆ cluster {j}");
                }
            }
        }
    }

    #[test]
    fn golden_output_on_the_running_example() {
        // Pinned behaviour on Table 1 of the paper. The running example is
        // dominated by shifting-AND-scaling structure (which this pure
        // shifting extractor must NOT report); the only pure shifting block
        // at δ = 1.0 is g1/g2 on conditions {c2, c5, c6}, where
        // g1 − g2 = (−29.5, −30, −29.5).
        let m = regcluster_datagen::running_example();
        let (report, clusters) = run_engine(
            &m,
            BooleanParams {
                delta: 1.0,
                min_genes: 2,
                min_conds: 3,
                ..Default::default()
            },
        );
        assert!(!report.truncated);
        assert_eq!(report.n_emitted, clusters.len());
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].p_members, vec![0, 1]);
        assert_eq!(clusters[0].chain, vec![1, 4, 5]);
        assert!(clusters[0].n_members.is_empty());
        let spread = {
            let ds: Vec<f64> = clusters[0]
                .chain
                .iter()
                .map(|&c| m.value(0, c) - m.value(1, c))
                .collect();
            ds.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - ds.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(spread <= 2.0 + 1e-9, "2δ guarantee violated: {spread}");
    }

    #[test]
    fn exhausted_budget_reports_truncated() {
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| (0..6).map(|j| ((i * 13 + j * 7) % 11) as f64).collect())
            .collect();
        let m = ExpressionMatrix::from_rows(
            (0..6).map(|i| format!("g{i}")).collect(),
            (0..6).map(|i| format!("c{i}")).collect(),
            rows,
        )
        .unwrap();
        let (report, _) = run_engine(
            &m,
            BooleanParams {
                delta: 5.0,
                state_budget: 3,
                ..Default::default()
            },
        );
        assert!(report.truncated);
    }

    #[test]
    fn precancelled_control_truncates_without_work() {
        let m = regcluster_datagen::running_example();
        let engine = BooleanEngine::new(BooleanParams::default()).unwrap();
        let control = MineControl::new();
        control.cancel();
        let sink = VecSink::new();
        let report = engine.run(&m, &sink, &control, &NoopObserver).unwrap();
        assert!(report.truncated);
        assert_eq!(report.n_emitted, 0);
    }

    #[test]
    fn rejects_invalid_params() {
        assert!(BooleanEngine::new(BooleanParams {
            delta: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(BooleanEngine::new(BooleanParams {
            min_genes: 1,
            ..Default::default()
        })
        .is_err());
    }
}
