//! Root partitioning for distributed mining.
//!
//! The enumeration tree is partitionable by root condition: a subtree's
//! output is a pure function of the mining parameters and its root's
//! member rows, and subtree outputs are disjoint by root (`chain[0]` —
//! see the soundness argument in [`delta`](crate::delta)). A coordinator
//! can therefore split the root id space `0..n_roots` into contiguous
//! ranges, lease each range to a worker, and merge the resulting shards
//! into a store bit-identical to a single-node run.
//!
//! Contiguous ranges (rather than striding) keep each lease describable
//! as a `(start, end)` pair on the wire and make shard → root-range
//! validation a pair of comparisons.

use regcluster_matrix::CondId;

/// Splits the root id space `0..n_roots` into at most `n_parts`
/// contiguous, non-empty, disjoint ranges covering every root exactly
/// once. Ranges are half-open `(start, end)` pairs, ordered by `start`,
/// and balanced: sizes differ by at most one, larger parts first.
///
/// Fewer than `n_parts` ranges come back when there are fewer roots than
/// parts (each root then gets its own range); zero roots or zero parts
/// yield an empty partition.
///
/// ```
/// use regcluster_core::partition_roots;
/// assert_eq!(partition_roots(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
/// assert_eq!(partition_roots(2, 4), vec![(0, 1), (1, 2)]);
/// assert_eq!(partition_roots(0, 4), vec![]);
/// ```
pub fn partition_roots(n_roots: usize, n_parts: usize) -> Vec<(CondId, CondId)> {
    if n_roots == 0 || n_parts == 0 {
        return Vec::new();
    }
    let parts = n_parts.min(n_roots);
    let base = n_roots / parts;
    let extra = n_roots % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        ranges.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, n_roots);
    ranges
}

/// Expands a half-open root range into the explicit root list the
/// engine's roots-subset entry points take.
pub fn range_roots(start: CondId, end: CondId) -> Vec<CondId> {
    (start..end).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_root_exactly_once() {
        for n_roots in 0..40 {
            for n_parts in 1..10 {
                let ranges = partition_roots(n_roots, n_parts);
                let mut seen = Vec::new();
                for &(s, e) in &ranges {
                    assert!(s < e, "empty range in {ranges:?}");
                    seen.extend(s..e);
                }
                let expect: Vec<usize> = (0..n_roots).collect();
                assert_eq!(
                    seen, expect,
                    "partition_roots({n_roots}, {n_parts}) = {ranges:?}"
                );
            }
        }
    }

    #[test]
    fn balanced_within_one() {
        for n_roots in 1..50 {
            for n_parts in 1..12 {
                let ranges = partition_roots(n_roots, n_parts);
                assert_eq!(ranges.len(), n_parts.min(n_roots));
                let sizes: Vec<usize> = ranges.iter().map(|(s, e)| e - s).collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn degenerate_inputs_are_empty() {
        assert!(partition_roots(0, 3).is_empty());
        assert!(partition_roots(3, 0).is_empty());
    }

    #[test]
    fn range_roots_expands_half_open() {
        assert_eq!(range_roots(2, 5), vec![2, 3, 4]);
        assert!(range_roots(4, 4).is_empty());
    }
}
