//! Property-based tests of the core model invariants.
//!
//! These check the paper's lemmas directly against randomly generated data:
//! Lemma 3.1 (RWave pointer queries are sound), Lemma 3.2 (windowed H-scores
//! characterize shifting-and-scaling families), and Definition 3.2 (every
//! mined cluster re-validates against the raw matrix).

use proptest::prelude::*;

use regcluster_core::rwave::RWaveModel;
use regcluster_core::{mine, mine_parallel, MiningParams};
use regcluster_matrix::ExpressionMatrix;

/// A random profile of 2..=12 expression values in [-50, 50].
fn profile_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, 2..=12)
}

/// A small random matrix plus mining parameters.
fn matrix_strategy() -> impl Strategy<Value = (ExpressionMatrix, MiningParams)> {
    (2usize..=8, 3usize..=8).prop_flat_map(|(n_genes, n_conds)| {
        let values = prop::collection::vec(-20.0f64..20.0, n_genes * n_conds);
        let gamma = 0.0f64..0.5;
        let eps = 0.0f64..1.0;
        (Just(n_genes), Just(n_conds), values, gamma, eps).prop_map(
            |(n_genes, n_conds, values, gamma, eps)| {
                let m = ExpressionMatrix::from_flat_unlabeled(n_genes, n_conds, values)
                    .expect("generated values are finite");
                let params = MiningParams::new(2, 2, gamma, eps).expect("valid params");
                (m, params)
            },
        )
    })
}

proptest! {
    /// Pointers are non-nested, strictly ordered, and each spans more than γ.
    #[test]
    fn rwave_pointer_invariants(profile in profile_strategy(), gamma_frac in 0.0f64..1.0) {
        let (lo, hi) = profile.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
        let gamma = gamma_frac * (hi - lo);
        let m = RWaveModel::build(&profile, gamma);
        for w in m.pointers().windows(2) {
            prop_assert!(w[0].lo < w[1].lo);
            prop_assert!(w[0].hi < w[1].hi);
        }
        for p in m.pointers() {
            prop_assert!(p.lo < p.hi);
            prop_assert!(m.value_at(p.hi as usize) - m.value_at(p.lo as usize) > gamma);
        }
    }

    /// Lemma 3.1 soundness: every pair the model reports as regulated really
    /// differs by more than γ.
    #[test]
    fn rwave_regulation_soundness(profile in profile_strategy(), gamma_frac in 0.0f64..1.0) {
        let (lo, hi) = profile.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
        let gamma = gamma_frac * (hi - lo);
        let m = RWaveModel::build(&profile, gamma);
        let n = m.len();
        for a in 0..n {
            for b in a..n {
                if m.is_up_regulated(a, b) {
                    prop_assert!(m.value_at(b) - m.value_at(a) > gamma);
                }
                // The pointer walk and the direct value comparison are the
                // same relation, exactly.
                prop_assert_eq!(
                    m.is_up_regulated(a, b),
                    m.is_up_regulated_via_pointers(a, b)
                );
            }
        }
    }

    /// Bordering completeness: every condition with SOME regulation
    /// predecessor gets one via the model, and predecessor_end is exactly
    /// the last rank certified.
    #[test]
    fn rwave_closest_predecessor_found(profile in profile_strategy(), gamma_frac in 0.0f64..0.9) {
        let (lo, hi) = profile.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
        let gamma = gamma_frac * (hi - lo);
        let m = RWaveModel::build(&profile, gamma);
        let n = m.len();
        for r in 0..n {
            let has_real_pred = (0..r).any(|p| m.value_at(r) - m.value_at(p) > gamma);
            match m.predecessor_end(r) {
                Some(p_end) => {
                    prop_assert!(has_real_pred);
                    // Everything at rank <= p_end is certified; the raw data
                    // must agree.
                    for p in 0..=p_end {
                        prop_assert!(m.value_at(r) - m.value_at(p) > gamma);
                    }
                }
                None => {
                    // The model may be conservative only about *which* pairs
                    // are linked, never about a condition's own closest
                    // predecessor: the construction scans every rank.
                    prop_assert!(!has_real_pred,
                        "rank {r} has a real predecessor but the model reports none");
                }
            }
        }
    }

    /// The greedy max-chain table equals an exhaustive DP over the pointer
    /// relation.
    #[test]
    fn rwave_max_chain_matches_dp(profile in profile_strategy(), gamma_frac in 0.0f64..1.0) {
        let (lo, hi) = profile.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
        let gamma = gamma_frac * (hi - lo);
        let m = RWaveModel::build(&profile, gamma);
        let n = m.len();
        let mut best_fwd = vec![1usize; n];
        for a in (0..n).rev() {
            for b in a + 1..n {
                if m.is_up_regulated(a, b) {
                    best_fwd[a] = best_fwd[a].max(1 + best_fwd[b]);
                }
            }
        }
        let mut best_bwd = vec![1usize; n];
        for a in 0..n {
            for b in 0..a {
                if m.is_up_regulated(b, a) {
                    best_bwd[a] = best_bwd[a].max(1 + best_bwd[b]);
                }
            }
        }
        for r in 0..n {
            prop_assert_eq!(m.max_chain_fwd(r), best_fwd[r]);
            prop_assert_eq!(m.max_chain_bwd(r), best_bwd[r]);
        }
    }

    /// Every cluster the miner emits re-validates against the raw matrix
    /// (Definition 3.2), and no two clusters are identical.
    #[test]
    fn mined_clusters_validate((m, params) in matrix_strategy()) {
        let clusters = mine(&m, &params).expect("mining succeeds");
        let mut keys = Vec::new();
        for c in &clusters {
            c.validate(&m, &params).map_err(|e| {
                TestCaseError::fail(format!("cluster {c:?} failed validation: {e}"))
            })?;
            keys.push((c.chain.clone(), c.genes()));
        }
        let before = keys.len();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(before, keys.len(), "duplicate clusters emitted");
    }

    /// Parallel mining returns exactly the sequential result.
    #[test]
    fn parallel_matches_sequential((m, params) in matrix_strategy()) {
        let seq = mine(&m, &params).expect("sequential mining succeeds");
        let par = mine_parallel(&m, &params, 3).expect("parallel mining succeeds");
        prop_assert_eq!(seq, par);
    }

    /// Gene-set maximality: if a non-member gene fits an output cluster
    /// (Definition 3.2 still holds with it added, in either orientation),
    /// then some output cluster with the same chain contains the enlarged
    /// gene set — nothing coherent is silently dropped.
    #[test]
    fn output_gene_sets_are_maximal((m, params) in matrix_strategy()) {
        let clusters = mine(&m, &params).expect("mining succeeds");
        for c in &clusters {
            for g in 0..m.n_genes() {
                if c.genes().binary_search(&g).is_ok() {
                    continue;
                }
                for orientation in 0..2 {
                    let mut bigger = c.clone();
                    if orientation == 0 {
                        bigger.p_members.push(g);
                        bigger.p_members.sort_unstable();
                    } else {
                        bigger.n_members.push(g);
                        bigger.n_members.sort_unstable();
                    }
                    // Representativeness may flip with the extra member;
                    // ignore that rule here (only regulation + coherence
                    // matter for the maximality claim).
                    let fits = match bigger.validate(&m, &params) {
                        Ok(()) => true,
                        Err(regcluster_core::ValidationError::NotRepresentative) => true,
                        Err(_) => false,
                    };
                    if fits {
                        let genes_plus = bigger.genes();
                        let covered = clusters.iter().any(|other| {
                            other.chain == c.chain
                                && genes_plus
                                    .iter()
                                    .all(|gg| other.genes().binary_search(gg).is_ok())
                        }) || {
                            // …or the enlarged set is representative under
                            // the inverted chain and reported there.
                            let inv: Vec<usize> =
                                c.chain.iter().rev().copied().collect();
                            clusters.iter().any(|other| {
                                other.chain == inv
                                    && genes_plus
                                        .iter()
                                        .all(|gg| other.genes().binary_search(gg).is_ok())
                            })
                        };
                        prop_assert!(
                            covered,
                            "gene {} fits cluster {:?} but no superset cluster reported",
                            g,
                            c
                        );
                    }
                }
            }
        }
    }

    /// Query mining equals filtered full mining for every gene.
    #[test]
    fn query_mining_matches_filter((m, params) in matrix_strategy()) {
        let all = mine(&m, &params).expect("mining succeeds");
        for gene in 0..m.n_genes() {
            let queried = regcluster_core::mine_containing(&m, &params, gene)
                .expect("query mining succeeds");
            let filtered: Vec<_> = all
                .iter()
                .filter(|c| c.genes().binary_search(&gene).is_ok())
                .cloned()
                .collect();
            prop_assert_eq!(queried, filtered, "gene {}", gene);
        }
    }

    /// Completeness on perfect families: genes that are exact affine images
    /// of a base profile with strong steps always form one full cluster.
    #[test]
    fn affine_families_cluster_completely(
        n_genes in 3usize..7,
        n_conds in 4usize..7,
        seed_steps in prop::collection::vec(0.3f64..1.0, 8),
        scalings in prop::collection::vec(
            prop::sample::select(vec![-3.0, -2.0, -1.0, 0.5, 1.0, 2.0, 3.0]), 8),
        shifts in prop::collection::vec(-5.0f64..5.0, 8),
    ) {
        // Base profile: cumulative sums of strong steps, normalized into [0,1].
        let mut base = vec![0.0f64];
        for s in seed_steps.iter().take(n_conds - 1) {
            base.push(base.last().unwrap() + s);
        }
        let span = *base.last().unwrap();
        for v in &mut base {
            *v /= span;
        }
        let min_gap = base.windows(2).map(|w| w[1] - w[0]).fold(f64::INFINITY, f64::min);

        let rows: Vec<Vec<f64>> = (0..n_genes)
            .map(|g| base.iter().map(|&v| scalings[g] * v + shifts[g]).collect())
            .collect();
        let m = ExpressionMatrix::from_flat_unlabeled(
            n_genes,
            n_conds,
            rows.iter().flatten().copied().collect(),
        )
        .unwrap();

        // γ as a fraction of range: each gene's range is |s1| · 1, each step
        // |s1| · gap ≥ |s1| · min_gap, so any fraction < min_gap qualifies.
        let gamma = 0.9 * min_gap.min(1.0);
        let params = MiningParams::new(n_genes, n_conds, gamma, 1e-9).unwrap();
        let clusters = mine(&m, &params).unwrap();

        let n_pos = (0..n_genes).filter(|&g| scalings[g] > 0.0).count();
        let n_neg = n_genes - n_pos;
        // Representativeness: the full-family cluster is emitted from the
        // majority orientation; a tie resolves by chain head ids. In all
        // cases exactly one cluster covering every gene must appear.
        prop_assert_eq!(clusters.len(), 1, "expected the single full-family cluster");
        let c = &clusters[0];
        prop_assert_eq!(c.n_genes(), n_genes);
        prop_assert_eq!(c.n_conditions(), n_conds);
        prop_assert!(c.p_members.len() == n_pos.max(n_neg));
        c.validate(&m, &params).map_err(|e| {
            TestCaseError::fail(format!("family cluster failed validation: {e}"))
        })?;
    }

    /// Permuting condition columns never changes the set of clusters, up to
    /// the column relabeling.
    #[test]
    fn column_permutation_invariance((m, params) in matrix_strategy(), salt in 0u64..1000) {
        let n = m.n_conditions();
        // A deterministic permutation derived from the salt.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = ((salt as usize).wrapping_mul(2654435761).wrapping_add(i * 40503)) % (i + 1);
            perm.swap(i, j);
        }
        // permuted[.., k] = original[.., perm[k]]
        let permuted = m.submatrix(&(0..m.n_genes()).collect::<Vec<_>>(), &perm).unwrap();

        let a = mine(&m, &params).unwrap();
        let b = mine(&permuted, &params).unwrap();
        // Map the permuted clusters' condition ids back to original ids.
        let b_mapped: Vec<_> = b
            .into_iter()
            .map(|mut c| {
                for cond in &mut c.chain {
                    *cond = perm[*cond];
                }
                c
            })
            .collect();
        // Tied clusters (|pX| == |nX|) are resolved by condition-id order
        // (the paper's arbitrary tie-break), and the coherence constraint is
        // evaluated on the representative orientation's baseline pair — so
        // tied clusters legitimately depend on the column labeling. Only the
        // majority-oriented clusters must be invariant.
        let canon = |c: &regcluster_core::RegCluster| {
            (c.chain.clone(), c.p_members.clone(), c.n_members.clone())
        };
        let mut ka: Vec<_> = a
            .iter()
            .filter(|c| c.p_members.len() > c.n_members.len())
            .map(canon)
            .collect();
        let mut kb: Vec<_> = b_mapped
            .iter()
            .filter(|c| c.p_members.len() > c.n_members.len())
            .map(canon)
            .collect();
        ka.sort();
        kb.sort();
        prop_assert_eq!(ka, kb);
    }
}
