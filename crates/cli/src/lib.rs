#![warn(missing_docs)]

//! Implementation of the `regcluster` command-line tool.
//!
//! Subcommands:
//!
//! * `mine` — mine reg-clusters from a tab-delimited expression matrix
//!   (optionally streaming them into an indexed `.rcs` store);
//! * `generate` — write a synthetic dataset (and its ground truth);
//! * `eval` — score mined clusters against a ground-truth file;
//! * `info` — print matrix statistics;
//! * `query` — filter a `.rcs` cluster store offline;
//! * `serve` — expose a `.rcs` store over HTTP (see [`serve`]).
//!
//! The argument parser is hand-rolled (the workspace's dependency policy
//! favours a small, auditable surface over pulling in a CLI framework); it
//! supports `--flag value` and `--flag=value` forms and produces precise
//! error messages. All logic lives in this library so it is unit-testable;
//! the binary is a thin wrapper.

pub mod args;
pub mod commands;
pub mod serve;

pub use args::{parse_args, Command, ParseError};
pub use commands::{run, CliError};
