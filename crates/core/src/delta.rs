//! Delta mining: classify enumeration roots as **unchanged** or **dirty**
//! between two versions of an expression matrix, so a re-measured dataset
//! re-mines only the subtrees whose input actually changed.
//!
//! # Why per-root fingerprints are sound
//!
//! The enumeration tree has one root per condition, and the subtree rooted
//! at condition `r` is a pure function of the mining parameters and the
//! **rows of the genes in its level-1 member set** (`root_members(r)`):
//!
//! * member sets only shrink along a path, so a gene outside
//!   `root_members(r)` can never join any node of subtree `r`;
//! * extension candidates come from the p-members' `RWave^γ` models, and
//!   each gene's model is built solely from that gene's row (plus γ, which
//!   is part of the parameters);
//! * coherence scores and ε-windows read only member rows.
//!
//! Therefore subtree `r` produces the same cluster set in two runs iff the
//! parameters match and the multiset of `(gene, direction, row bits)` over
//! `root_members(r)` matches. [`root_fingerprints`] hashes exactly that —
//! the member list itself is part of the hash, so membership changes
//! (a gene entering or leaving the level-1 set) are caught even when the
//! surviving members' rows are untouched.
//!
//! The dedup shards of the engine are keyed by `chain[0]`, and clusters
//! with different roots have different chains, so the full output is the
//! **disjoint union** of the per-root subtree outputs. A delta mine —
//! re-enumerating the dirty roots and reusing the unchanged roots' clusters
//! from the previous run — is thus bit-identical to a from-scratch mine
//! (golden-tested in `crates/core/tests/delta_golden.rs` at 1–8 threads).
//!
//! Like the checkpoint fingerprints this machinery extends, the hashes
//! guard against mix-ups (wrong file, stale store, silent re-measure), not
//! adversaries.

use regcluster_matrix::{CondId, ExpressionMatrix};

use crate::intern::mix;
use crate::miner::{Dir, Miner};
use crate::CoreError;

/// Seed of the per-gene row fingerprints (arbitrary odd constant, distinct
/// from the matrix and cluster fingerprint seeds).
const GENE_SEED: u64 = 0x6C_62_27_2E_07_BB_01_43;

/// Seed of the per-root fingerprints.
const ROOT_SEED: u64 = 0x27_22_0A_95_FE_D1_85_39;

/// One 64-bit fingerprint per gene, hashing the gene id and the exact bit
/// pattern of its expression row. Two matrices of identical shape assign a
/// gene the same fingerprint iff its row is bit-identical.
pub fn gene_fingerprints(matrix: &ExpressionMatrix) -> Vec<u64> {
    (0..matrix.n_genes())
        .map(|g| {
            let mut h = mix(GENE_SEED, g as u64);
            h = mix(h, matrix.n_conditions() as u64);
            for &v in matrix.row(g) {
                h = mix(h, v.to_bits());
            }
            h
        })
        .collect()
}

/// One 64-bit fingerprint per enumeration root (condition), hashing the
/// root's level-1 member list: for every member in `root_members(root)`
/// order, its gene id, direction flag, and row fingerprint.
///
/// Store these next to the mined clusters (the `.rcs` meta carries them as
/// `root_fingerprints`); a later run over a re-measured matrix compares
/// them via [`classify_roots`] to find which subtrees must be re-mined.
pub fn root_fingerprints(miner: &Miner<'_>) -> Vec<u64> {
    let matrix = miner.matrix();
    let gene_fps = gene_fingerprints(matrix);
    let mut members = Vec::new();
    (0..matrix.n_conditions())
        .map(|root| {
            miner.root_members_into(root, &mut members);
            let mut h = mix(ROOT_SEED, root as u64);
            h = mix(h, members.len() as u64);
            for m in &members {
                h = mix(h, m.gene as u64);
                h = mix(h, u64::from(m.dir == Dir::Fwd));
                h = mix(h, gene_fps[m.gene]);
            }
            h
        })
        .collect()
}

/// The outcome of diffing two fingerprint vectors: which roots must be
/// re-mined and which subtrees' clusters can be spliced from the previous
/// run untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaPlan {
    /// Roots whose fingerprint changed — re-enumerate these subtrees.
    pub dirty: Vec<CondId>,
    /// Roots whose fingerprint matched — their clusters (every cluster
    /// with `chain[0]` in this set) carry over verbatim.
    pub unchanged: Vec<CondId>,
}

impl DeltaPlan {
    /// `true` when nothing changed — the previous result is still exact.
    pub fn is_clean(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Membership mask over roots: `mask[r]` is `true` for unchanged roots.
    pub fn unchanged_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.dirty.len() + self.unchanged.len()];
        for &r in &self.unchanged {
            mask[r] = true;
        }
        mask
    }
}

/// Diffs the previous run's root fingerprints against the new matrix's,
/// partitioning roots into dirty and unchanged.
///
/// # Errors
///
/// [`CoreError::Delta`] when the vectors disagree in length — the matrices
/// have different condition counts, so per-root reuse is meaningless and
/// the caller must fall back to a full mine.
pub fn classify_roots(old: &[u64], new: &[u64]) -> Result<DeltaPlan, CoreError> {
    if old.len() != new.len() {
        return Err(CoreError::Delta(format!(
            "root fingerprint counts differ (previous run has {}, this matrix has {}): \
             the condition set changed, delta mining needs a full re-mine",
            old.len(),
            new.len()
        )));
    }
    let mut plan = DeltaPlan {
        dirty: Vec::new(),
        unchanged: Vec::new(),
    };
    for (root, (o, n)) in old.iter().zip(new).enumerate() {
        if o == n {
            plan.unchanged.push(root);
        } else {
            plan.dirty.push(root);
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MiningParams;
    use regcluster_matrix::ExpressionMatrix;

    fn matrix(cells: &[&[f64]]) -> ExpressionMatrix {
        let data: Vec<f64> = cells.iter().flat_map(|r| r.iter().copied()).collect();
        ExpressionMatrix::from_flat_unlabeled(cells.len(), cells[0].len(), data).unwrap()
    }

    #[test]
    fn identical_matrices_have_identical_fingerprints() {
        let m = matrix(&[&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]]);
        let params = MiningParams::new(1, 2, 0.15, 1.0).unwrap();
        let a = root_fingerprints(&Miner::new(&m, &params).unwrap());
        let b = root_fingerprints(&Miner::new(&m, &params).unwrap());
        assert_eq!(a, b);
        let plan = classify_roots(&a, &b).unwrap();
        assert!(plan.is_clean());
        assert_eq!(plan.unchanged.len(), m.n_conditions());
    }

    #[test]
    fn a_changed_row_dirties_only_roots_it_participates_in() {
        let before = matrix(&[&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]]);
        // Gene 1's row changes bit-for-bit; gene 0 is untouched.
        let after = matrix(&[&[1.0, 2.0, 3.0], &[10.0, 20.0, 31.0]]);
        let params = MiningParams::new(1, 2, 0.15, 1.0).unwrap();
        let old = root_fingerprints(&Miner::new(&before, &params).unwrap());
        let new = root_fingerprints(&Miner::new(&after, &params).unwrap());
        let plan = classify_roots(&old, &new).unwrap();
        // Gene 1 is a level-1 member of every root here, so every root is
        // dirty — the point is that the change is *detected*.
        assert!(!plan.is_clean());
        for &r in &plan.dirty {
            assert_ne!(old[r], new[r]);
        }
        for &r in &plan.unchanged {
            assert_eq!(old[r], new[r]);
        }
    }

    #[test]
    fn gene_fingerprints_are_row_sensitive_and_gene_sensitive() {
        let m = matrix(&[&[1.0, 2.0], &[1.0, 2.0]]);
        let fps = gene_fingerprints(&m);
        // Same row, different gene id: distinct fingerprints.
        assert_ne!(fps[0], fps[1]);
        let shifted = matrix(&[&[1.0, 2.5], &[1.0, 2.0]]);
        assert_ne!(gene_fingerprints(&shifted)[0], fps[0]);
        assert_eq!(gene_fingerprints(&shifted)[1], fps[1]);
    }

    #[test]
    fn mismatched_lengths_are_a_typed_error() {
        let err = classify_roots(&[1, 2], &[1, 2, 3]).unwrap_err();
        assert!(matches!(err, CoreError::Delta(_)));
        assert!(err.to_string().contains("full re-mine"));
    }
}
