//! Per-gene regulation thresholds.
//!
//! Section 3.1 of the paper defines the default threshold as a fraction of
//! each gene's expression range (Equation 4) and explicitly notes that
//! "in practice, other regulation thresholds, such as the average difference
//! between every pair of conditions whose values are closest \[18\], normalized
//! threshold \[17\], average expression value \[5\], etc., can be used where
//! appropriate". All four are implemented here; every variant resolves to a
//! concrete `γ_i ≥ 0` for a given gene profile.

use serde::{Deserialize, Serialize};

use crate::CoreError;

/// Strategy for deriving the per-gene regulation threshold `γ_i`.
///
/// The motivation for a *local* (per-gene) threshold rather than a global one
/// is that individual genes have very different sensitivities to stimuli: the
/// paper cites hormone-inducible genes whose response magnitudes differ by
/// orders of magnitude.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RegulationThreshold {
    /// `γ_i = γ · (max_j d_ij − min_j d_ij)` — Equation 4, the paper's
    /// default. `γ` must lie in `[0, 1]`.
    FractionOfRange(f64),
    /// A fixed absolute threshold shared by all genes. Must be `≥ 0`.
    Absolute(f64),
    /// `γ_i = multiplier ·` (mean difference between adjacent values of the
    /// sorted profile) — the closest-pair criterion of OP-Cluster
    /// (Liu & Wang \[18\]). The multiplier must be `≥ 0`.
    AvgClosestPairDiff(f64),
    /// `γ_i = γ · mean_j |d_ij|` — threshold proportional to the average
    /// expression magnitude (Chen, Filkov & Skiena \[5\]). `γ` must be `≥ 0`.
    FractionOfAvgExpression(f64),
}

impl RegulationThreshold {
    /// Validates the strategy's parameter domain.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] for out-of-domain or non-finite
    /// parameters.
    pub fn validate(&self) -> Result<(), CoreError> {
        match *self {
            RegulationThreshold::FractionOfRange(g) => {
                if !(g.is_finite() && (0.0..=1.0).contains(&g)) {
                    return Err(CoreError::InvalidParams(format!(
                        "fraction-of-range γ must be in [0, 1], got {g}"
                    )));
                }
            }
            RegulationThreshold::Absolute(g) => {
                if !(g.is_finite() && g >= 0.0) {
                    return Err(CoreError::InvalidParams(format!(
                        "absolute γ must be ≥ 0, got {g}"
                    )));
                }
            }
            RegulationThreshold::AvgClosestPairDiff(m) => {
                if !(m.is_finite() && m >= 0.0) {
                    return Err(CoreError::InvalidParams(format!(
                        "closest-pair multiplier must be ≥ 0, got {m}"
                    )));
                }
            }
            RegulationThreshold::FractionOfAvgExpression(g) => {
                if !(g.is_finite() && g >= 0.0) {
                    return Err(CoreError::InvalidParams(format!(
                        "fraction-of-average γ must be ≥ 0, got {g}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Resolves the concrete threshold `γ_i` for one gene profile.
    ///
    /// The profile must be non-empty; this is guaranteed by
    /// [`ExpressionMatrix`](regcluster_matrix::ExpressionMatrix) construction.
    pub fn resolve(&self, profile: &[f64]) -> f64 {
        debug_assert!(!profile.is_empty());
        match *self {
            RegulationThreshold::FractionOfRange(g) => {
                let (lo, hi) = min_max(profile);
                g * (hi - lo)
            }
            RegulationThreshold::Absolute(g) => g,
            RegulationThreshold::AvgClosestPairDiff(m) => {
                if profile.len() < 2 {
                    return 0.0;
                }
                let mut sorted = profile.to_vec();
                sorted.sort_by(f64::total_cmp);
                let sum: f64 = sorted.windows(2).map(|w| w[1] - w[0]).sum();
                m * sum / (sorted.len() - 1) as f64
            }
            RegulationThreshold::FractionOfAvgExpression(g) => {
                let mean_abs = profile.iter().map(|v| v.abs()).sum::<f64>() / profile.len() as f64;
                g * mean_abs
            }
        }
    }
}

fn min_max(profile: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in profile {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_of_range_matches_equation_4() {
        // g1 of the running example: range [-15, 15], γ = 0.15 → γ_1 = 4.5.
        let g1 = [10.0, -14.5, 15.0, 10.5, 0.0, 14.5, -15.0, 0.0, -5.0, -5.0];
        let t = RegulationThreshold::FractionOfRange(0.15);
        assert!((t.resolve(&g1) - 4.5).abs() < 1e-12);
        // g3: range [-4, 8] → γ_3 = 1.8.
        let g3 = [6.0, -3.8, 8.0, 6.2, 2.0, 7.8, -4.0, 2.0, 0.0, 0.0];
        assert!((t.resolve(&g3) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn absolute_ignores_profile() {
        let t = RegulationThreshold::Absolute(2.5);
        assert_eq!(t.resolve(&[0.0, 100.0]), 2.5);
        assert_eq!(t.resolve(&[5.0]), 2.5);
    }

    #[test]
    fn closest_pair_averages_adjacent_gaps() {
        // sorted: 1, 2, 4, 8 → gaps 1, 2, 4 → mean 7/3.
        let t = RegulationThreshold::AvgClosestPairDiff(1.0);
        assert!((t.resolve(&[8.0, 1.0, 4.0, 2.0]) - 7.0 / 3.0).abs() < 1e-12);
        let t2 = RegulationThreshold::AvgClosestPairDiff(0.5);
        assert!((t2.resolve(&[8.0, 1.0, 4.0, 2.0]) - 7.0 / 6.0).abs() < 1e-12);
        assert_eq!(t.resolve(&[3.0]), 0.0);
    }

    #[test]
    fn fraction_of_avg_expression_uses_magnitudes() {
        let t = RegulationThreshold::FractionOfAvgExpression(0.1);
        // mean |v| of [-4, 4] is 4.
        assert!((t.resolve(&[-4.0, 4.0]) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn validation_accepts_good_domains() {
        assert!(RegulationThreshold::FractionOfRange(0.0).validate().is_ok());
        assert!(RegulationThreshold::FractionOfRange(1.0).validate().is_ok());
        assert!(RegulationThreshold::Absolute(0.0).validate().is_ok());
        assert!(RegulationThreshold::AvgClosestPairDiff(3.0)
            .validate()
            .is_ok());
        assert!(RegulationThreshold::FractionOfAvgExpression(2.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn validation_rejects_bad_domains() {
        assert!(RegulationThreshold::FractionOfRange(-0.1)
            .validate()
            .is_err());
        assert!(RegulationThreshold::FractionOfRange(1.5)
            .validate()
            .is_err());
        assert!(RegulationThreshold::FractionOfRange(f64::NAN)
            .validate()
            .is_err());
        assert!(RegulationThreshold::Absolute(-1.0).validate().is_err());
        assert!(RegulationThreshold::AvgClosestPairDiff(-0.5)
            .validate()
            .is_err());
        assert!(RegulationThreshold::FractionOfAvgExpression(f64::INFINITY)
            .validate()
            .is_err());
    }

    #[test]
    fn flat_profile_resolves_to_zero_threshold() {
        let t = RegulationThreshold::FractionOfRange(0.15);
        assert_eq!(t.resolve(&[3.0, 3.0, 3.0]), 0.0);
    }
}
