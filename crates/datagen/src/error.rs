use std::fmt;

/// Errors produced by the dataset generators.
#[derive(Debug, Clone, PartialEq)]
pub enum DatagenError {
    /// A configuration value is out of its valid domain.
    InvalidConfig(String),
    /// The requested clusters need more disjoint genes or conditions than
    /// the matrix provides.
    Infeasible(String),
}

impl fmt::Display for DatagenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatagenError::InvalidConfig(m) => write!(f, "invalid generator config: {m}"),
            DatagenError::Infeasible(m) => write!(f, "infeasible generator config: {m}"),
        }
    }
}

impl std::error::Error for DatagenError {}
