//! Negative co-regulation: the reg-cluster model groups anti-correlated
//! genes with their positively correlated partners in one cluster — the
//! capability §1.1 of the paper singles out as missing from prior subspace
//! and pattern-based methods.
//!
//! This example builds a small dataset by hand: an activator module whose
//! genes rise across a stimulus chain, a repressor module mirroring it with
//! per-gene sensitivities (different negative scalings), and unrelated
//! noise genes. One mining run returns a single cluster with the activators
//! as p-members and the repressors as n-members.
//!
//! Run with `cargo run --example negative_correlation`.

use regcluster::core::{mine, MiningParams};
use regcluster::matrix::ExpressionMatrix;

fn main() {
    // Stimulus response profile over six conditions, in [0, 1].
    let base = [0.0, 0.22, 0.41, 0.63, 0.80, 1.0];

    let mut names = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::new();

    // Activators: d = s1 · base + s2, s1 > 0 (varying sensitivity).
    for (i, (s1, s2)) in [(8.0, 1.0), (6.5, 2.5), (9.0, 0.5), (7.2, 1.8)]
        .iter()
        .enumerate()
    {
        names.push(format!("act{i}"));
        rows.push(base.iter().map(|&b| s1 * b + s2).collect());
    }
    // Repressors: s1 < 0 — high expression when the activators are low.
    for (i, (s1, s2)) in [(-7.5, 9.0), (-6.0, 8.0), (-8.5, 9.5)].iter().enumerate() {
        names.push(format!("rep{i}"));
        rows.push(base.iter().map(|&b| s1 * b + s2).collect());
    }
    // Noise genes: no consistent response.
    let noise = [
        [5.1, 0.4, 7.7, 3.2, 9.0, 1.5],
        [2.2, 8.8, 0.9, 6.1, 4.4, 7.0],
        [9.3, 3.1, 5.5, 0.2, 6.6, 2.8],
    ];
    for (i, row) in noise.iter().enumerate() {
        names.push(format!("noise{i}"));
        rows.push(row.to_vec());
    }

    let conds = (1..=6).map(|i| format!("t{i}")).collect();
    let matrix = ExpressionMatrix::from_rows(names, conds, rows).expect("well-formed");

    let params = MiningParams::new(7, 6, 0.1, 0.05).expect("valid parameters");
    let clusters = mine(&matrix, &params).expect("mining succeeds");
    assert_eq!(clusters.len(), 1, "exactly the activator/repressor cluster");
    let c = &clusters[0];

    println!(
        "chain: {}",
        c.regulation_chain().display_with(matrix.condition_names())
    );
    println!(
        "p-members (up-regulated along the chain):   {:?}",
        c.p_members
            .iter()
            .map(|&g| matrix.gene_name(g))
            .collect::<Vec<_>>()
    );
    println!(
        "n-members (down-regulated along the chain): {:?}",
        c.n_members
            .iter()
            .map(|&g| matrix.gene_name(g))
            .collect::<Vec<_>>()
    );
    c.validate(&matrix, &params)
        .expect("satisfies Definition 3.2");

    println!("\nprofiles along the chain (note the crossovers — the Figure 8 signature):");
    for &g in c.p_members.iter().chain(c.n_members.iter()) {
        let vals: Vec<String> = c
            .chain
            .iter()
            .map(|&cond| format!("{:>5.2}", matrix.value(g, cond)))
            .collect();
        println!("  {:>6}: [{}]", matrix.gene_name(g), vals.join(", "));
    }
    println!(
        "\nA pScore- or ratio-based model would assign the repressors a huge\n\
         deviation; the reg-cluster H-score is identical for both orientations,\n\
         so one cluster captures the whole pathway."
    );
}
