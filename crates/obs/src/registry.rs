//! The metrics registry: named counters and fixed-bucket histograms.
//!
//! Registration is the slow path — it takes a lock, validates names, and
//! allocates the instrument cell. Everything after registration is the fast
//! path: handles are `Arc`s straight to the atomic cells, so recording is a
//! relaxed atomic read-modify-write with **no lock, no lookup and no
//! allocation**. Hot-path users (the mining observer, the HTTP workers)
//! therefore pre-register every instrument they will ever touch and keep
//! the handles; see DESIGN.md §9 for why this is load-bearing for the
//! zero-allocation enumeration budget.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// How a metric's raw `u64` cell is interpreted at exposition time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// The value is a plain count and is exported verbatim.
    Count,
    /// The value is a duration in **microseconds**, accumulated as an
    /// integer so updates stay a single atomic add; encoders divide by
    /// 10⁶ and export **seconds**, per Prometheus convention. Metrics
    /// with this unit should be named `…_seconds_total`.
    Micros,
}

/// The exposition type of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing counter.
    Counter,
    /// Fixed-bucket histogram (cumulative `le` buckets on exposition).
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A clonable handle to a registered counter.
///
/// All operations are relaxed atomics on one shared cell: safe from any
/// thread, free of locks and allocation. Clones observe the same cell.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Shared state of a registered histogram.
#[derive(Debug)]
pub(crate) struct HistogramCell {
    /// Ascending upper bounds; an implicit `+Inf` bucket follows.
    pub(crate) bounds: Box<[f64]>,
    /// Per-bucket observation counts, `bounds.len() + 1` cells — **not**
    /// cumulative; encoders accumulate. The last cell is the overflow
    /// (`+Inf`) bucket.
    pub(crate) buckets: Box<[AtomicU64]>,
    /// Sum of all observed values, stored as `f64` bits and updated by
    /// compare-exchange so `observe` never locks.
    pub(crate) sum_bits: AtomicU64,
}

/// A clonable handle to a registered fixed-bucket histogram.
///
/// [`observe`](Histogram::observe) touches one bucket cell and the sum
/// cell — no locks, no allocation. Clones observe the same cells.
#[derive(Debug, Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: f64) {
        // Linear scan: bucket lists are small (≤ ~20) and the scan is
        // branch-predictable, beating a binary search at this size.
        let mut idx = self.cell.bounds.len();
        for (i, bound) in self.cell.bounds.iter().enumerate() {
            if value <= *bound {
                idx = i;
                break;
            }
        }
        self.cell.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.cell.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + value).to_bits();
            match self.cell.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.cell
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.cell.sum_bits.load(Ordering::Relaxed))
    }
}

/// One registered series: a concrete (name, label set) pair bound to its
/// instrument cell.
pub(crate) struct Series {
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) instrument: Instrument,
}

/// The cell behind a series.
pub(crate) enum Instrument {
    /// Counter cell.
    Counter(Arc<AtomicU64>),
    /// Histogram cell.
    Histogram(Arc<HistogramCell>),
}

/// A metric family: every series sharing one name, help text, kind and
/// unit. Prometheus requires `# HELP`/`# TYPE` once per name, so the
/// registry groups series this way at registration time.
pub(crate) struct Family {
    pub(crate) name: String,
    pub(crate) help: String,
    pub(crate) kind: MetricKind,
    pub(crate) unit: Unit,
    pub(crate) series: Vec<Series>,
}

/// A registry of metric families.
///
/// Thread-safe: registration serializes on an internal mutex, recording
/// through the returned handles is lock-free. Registering the same
/// `(name, labels)` pair twice returns a handle to the **same** cell, so
/// independent components may idempotently declare the instruments they
/// share.
///
/// # Panics
///
/// Registration panics on programmer error — invalid metric/label names,
/// re-registering a name with a different kind/help/unit, or non-ascending
/// histogram bounds. These are wiring bugs, caught by any test that
/// touches the instrumented path; they cannot be triggered by production
/// data.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-acquires) a counter with [`Unit::Count`].
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.counter_with_unit(name, help, labels, Unit::Count)
    }

    /// Registers (or re-acquires) a counter whose cell accumulates
    /// **microseconds** and is exported as seconds (see [`Unit::Micros`]).
    pub fn counter_micros(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.counter_with_unit(name, help, labels, Unit::Micros)
    }

    fn counter_with_unit(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        unit: Unit,
    ) -> Counter {
        let mut families = self.lock();
        let family = resolve_family(&mut families, name, help, MetricKind::Counter, unit);
        let labels = owned_labels(labels);
        if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
            match &series.instrument {
                Instrument::Counter(cell) => {
                    return Counter {
                        cell: Arc::clone(cell),
                    }
                }
                Instrument::Histogram(_) => unreachable!("family kind is Counter"),
            }
        }
        let cell = Arc::new(AtomicU64::new(0));
        family.series.push(Series {
            labels,
            instrument: Instrument::Counter(Arc::clone(&cell)),
        });
        Counter { cell }
    }

    /// Registers (or re-acquires) a histogram with the given ascending
    /// bucket upper bounds (an implicit `+Inf` bucket is always added).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name:?}: bucket bounds must be strictly ascending, got {bounds:?}"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram {name:?}: bucket bounds must be finite (the +Inf bucket is implicit)"
        );
        let mut families = self.lock();
        let family = resolve_family(
            &mut families,
            name,
            help,
            MetricKind::Histogram,
            Unit::Count,
        );
        let labels = owned_labels(labels);
        if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
            match &series.instrument {
                Instrument::Histogram(cell) => {
                    assert!(
                        cell.bounds.iter().copied().eq(bounds.iter().copied()),
                        "histogram {name:?} re-registered with different buckets"
                    );
                    return Histogram {
                        cell: Arc::clone(cell),
                    };
                }
                Instrument::Counter(_) => unreachable!("family kind is Histogram"),
            }
        }
        let cell = Arc::new(HistogramCell {
            bounds: bounds.into(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        });
        family.series.push(Series {
            labels,
            instrument: Instrument::Histogram(Arc::clone(&cell)),
        });
        Histogram { cell }
    }

    /// Every registered metric name, in registration order. This is the
    /// contract surface of the documentation drift test: each name listed
    /// here must appear in `docs/OBSERVABILITY.md`.
    pub fn metric_names(&self) -> Vec<String> {
        self.lock().iter().map(|f| f.name.clone()).collect()
    }

    /// Runs `f` over the registered families (internal exposition hook).
    pub(crate) fn with_families<R>(&self, f: impl FnOnce(&[Family]) -> R) -> R {
        f(&self.lock())
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Family>> {
        self.families.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Finds or creates the family for `name`, enforcing one kind/help/unit
/// per name.
fn resolve_family<'a>(
    families: &'a mut Vec<Family>,
    name: &str,
    help: &str,
    kind: MetricKind,
    unit: Unit,
) -> &'a mut Family {
    assert!(
        valid_metric_name(name),
        "invalid metric name {name:?}: want [a-zA-Z_:][a-zA-Z0-9_:]*"
    );
    if let Some(idx) = families.iter().position(|f| f.name == name) {
        let family = &families[idx];
        assert!(
            family.kind == kind && family.unit == unit && family.help == help,
            "metric {name:?} re-registered with different kind, unit or help"
        );
        return &mut families[idx];
    }
    families.push(Family {
        name: name.to_string(),
        help: help.to_string(),
        kind,
        unit,
        series: Vec::new(),
    });
    families.last_mut().expect("just pushed")
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    for (key, _) in labels {
        assert!(
            valid_label_name(key),
            "invalid label name {key:?}: want [a-zA-Z_][a-zA-Z0-9_]*"
        );
    }
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_one_cell() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("requests_total", "Requests.", &[("route", "/x")]);
        let b = registry.counter("requests_total", "Requests.", &[("route", "/x")]);
        let other = registry.counter("requests_total", "Requests.", &[("route", "/y")]);
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.get(), 3, "same (name, labels) → same cell");
        assert_eq!(other.get(), 1, "different labels → different cell");
        assert_eq!(registry.metric_names(), vec!["requests_total"]);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat", "Latency.", &[], &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(1.0); // on the bound → lower bucket (le semantics)
        h.observe(5.0);
        h.observe(100.0); // overflow bucket
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 106.5).abs() < 1e-9);
        let again = registry.histogram("lat", "Latency.", &[], &[1.0, 10.0]);
        assert_eq!(again.count(), 4, "re-registration re-acquires the cell");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("n_total", "N.", &[]);
        let h = registry.histogram("v", "V.", &[], &[8.0]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1024 {
                        c.inc();
                        h.observe(f64::from(i % 16));
                    }
                });
            }
        });
        assert_eq!(c.get(), 4096);
        assert_eq!(h.count(), 4096);
        assert!((h.sum() - 4.0 * 1024.0 * 7.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("m", "M.", &[]);
        let _ = registry.histogram("m", "M.", &[], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_buckets_panic() {
        let registry = MetricsRegistry::new();
        let _ = registry.histogram("m", "M.", &[], &[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("9lives", "M.", &[]);
    }
}
