//! End-to-end tests of the compiled `regcluster` binary: real process, real
//! argv, real exit codes.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_regcluster"))
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regcluster-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("regcluster mine"));
    assert!(text.contains("regcluster baseline"));
}

#[test]
fn bad_arguments_exit_nonzero_with_stderr() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown subcommand"), "{err}");

    let out = bin().args(["mine", "--input"]).output().unwrap();
    assert!(!out.status.success());

    let out = bin()
        .args(["info", "--input", "/definitely/not/here.tsv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn full_pipeline_through_the_binary() {
    let dir = tmpdir();
    let matrix = dir.join("data.tsv");
    let truth = dir.join("truth.json");
    let found = dir.join("found.json");

    let out = bin()
        .args([
            "generate",
            "--output",
            matrix.to_str().unwrap(),
            "--genes",
            "200",
            "--conds",
            "14",
            "--clusters",
            "2",
            "--gene-frac",
            "0.05",
            "--seed",
            "5",
            "--ground-truth",
            truth.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args([
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--min-genes",
            "5",
            "--min-conds",
            "4",
            "--gamma",
            "0.1",
            "--epsilon",
            "0.01",
            "--stats",
            "--output",
            found.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("mined"), "{text}");
    assert!(text.contains("nodes"), "{text}");

    let out = bin()
        .args([
            "eval",
            "--clusters",
            found.to_str().unwrap(),
            "--ground-truth",
            truth.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let rec: f64 = text
        .lines()
        .find(|l| l.starts_with("recovery"))
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap()
        .parse()
        .unwrap();
    assert!(rec > 0.99, "{text}");
}

#[test]
fn parallel_mine_reports_stats_and_elapsed_in_json() {
    let dir = tmpdir();
    let matrix = dir.join("par.tsv");
    let found = dir.join("par-found.json");
    regcluster_matrix::io::write_matrix_file(&regcluster_datagen::running_example(), &matrix)
        .unwrap();

    let out = bin()
        .args([
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--min-genes",
            "3",
            "--min-conds",
            "5",
            "--gamma",
            "0.15",
            "--epsilon",
            "0.1",
            "--threads",
            "4",
            "--stats",
            "--progress",
            "--output",
            found.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("mined 1 reg-clusters"), "{text}");
    assert!(text.contains("4 threads"), "{text}");
    // --stats now works at any thread count.
    assert!(text.contains("nodes"), "{text}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("clusters emitted"), "--progress: {err}");

    // The JSON document carries run metadata: per-rule prune counts and
    // wall-clock time.
    let json = std::fs::read_to_string(&found).unwrap();
    for key in [
        "\"threads\"",
        "\"elapsed_secs\"",
        "\"truncated\"",
        "\"pruned_min_genes\"",
        "\"pruned_few_p\"",
        "\"pruned_duplicate\"",
        "\"pruned_coherence\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    let doc: regcluster_cli::commands::MineOutput = serde_json::from_str(&json).unwrap();
    assert_eq!(doc.threads, Some(4));
    assert_eq!(doc.truncated, Some(false));
    assert!(doc.elapsed_secs.unwrap() >= 0.0);
    let stats = doc.stats.expect("stats present in JSON output");
    assert!(stats.nodes > 0, "{stats:?}");
    assert_eq!(stats.emitted, 1, "{stats:?}");
    assert_eq!(doc.clusters.len(), 1);
}

#[test]
fn zero_deadline_yields_truncated_partial_results() {
    let dir = tmpdir();
    let matrix = dir.join("deadline.tsv");
    let found = dir.join("deadline-found.json");
    regcluster_matrix::io::write_matrix_file(&regcluster_datagen::running_example(), &matrix)
        .unwrap();

    let out = bin()
        .args([
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--min-genes",
            "3",
            "--min-conds",
            "5",
            "--gamma",
            "0.15",
            "--epsilon",
            "0.1",
            "--threads",
            "2",
            "--deadline-secs",
            "0",
            "--output",
            found.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    // An exceeded deadline is not a crash: the run exits zero with partial,
    // explicitly truncated results.
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("deadline expired"), "{text}");
    let doc: regcluster_cli::commands::MineOutput =
        serde_json::from_str(&std::fs::read_to_string(&found).unwrap()).unwrap();
    assert_eq!(doc.truncated, Some(true));
    assert!(doc.clusters.is_empty());
}

#[test]
fn interrupted_mine_checkpoints_and_resumes_through_the_binary() {
    let dir = tmpdir();
    let matrix = dir.join("ck.tsv");
    let ck = dir.join("run.rck");
    let found = dir.join("ck-found.json");
    regcluster_matrix::io::write_matrix_file(&regcluster_datagen::running_example(), &matrix)
        .unwrap();
    let mine_args = |extra: &[&str]| {
        let mut v = vec![
            "mine".to_string(),
            "--input".into(),
            matrix.to_str().unwrap().into(),
            "--min-genes".into(),
            "3".into(),
            "--min-conds".into(),
            "5".into(),
            "--gamma".into(),
            "0.15".into(),
            "--epsilon".into(),
            "0.1".into(),
            "--threads".into(),
            "2".into(),
        ];
        v.extend(extra.iter().map(|s| (*s).to_string()));
        v
    };

    // Reference: an uninterrupted run.
    let out = bin()
        .args(mine_args(&["--output", found.to_str().unwrap()]))
        .output()
        .unwrap();
    assert!(out.status.success());
    let reference: regcluster_cli::commands::MineOutput =
        serde_json::from_str(&std::fs::read_to_string(&found).unwrap()).unwrap();
    assert_eq!(reference.clusters.len(), 1);

    // Interrupt at once (deadline 0) with a checkpoint armed: the run
    // truncates but flushes a resumable snapshot and says where.
    let out = bin()
        .args(mine_args(&[
            "--deadline-secs",
            "0",
            "--checkpoint",
            ck.to_str().unwrap(),
            "--output",
            found.to_str().unwrap(),
        ]))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("checkpoint written"), "{text}");
    assert!(ck.exists(), "snapshot file must exist");
    let doc: regcluster_cli::commands::MineOutput =
        serde_json::from_str(&std::fs::read_to_string(&found).unwrap()).unwrap();
    assert_eq!(doc.truncated, Some(true));
    assert_eq!(
        doc.checkpoint_written.as_deref(),
        Some(ck.to_str().unwrap())
    );
    assert_eq!(doc.resumed_from, None);

    // Resume completes the run bit-identically to the reference.
    let out = bin()
        .args(mine_args(&[
            "--resume",
            ck.to_str().unwrap(),
            "--output",
            found.to_str().unwrap(),
        ]))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("resumed from checkpoint"), "{text}");
    let doc: regcluster_cli::commands::MineOutput =
        serde_json::from_str(&std::fs::read_to_string(&found).unwrap()).unwrap();
    assert_eq!(doc.truncated, Some(false));
    assert_eq!(doc.resumed_from.as_deref(), Some(ck.to_str().unwrap()));
    assert_eq!(doc.clusters, reference.clusters);

    // A snapshot taken under different parameters is refused, not mis-mined.
    let out = bin()
        .args([
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--min-genes",
            "2",
            "--min-conds",
            "5",
            "--gamma",
            "0.15",
            "--epsilon",
            "0.1",
            "--resume",
            ck.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("parameters"), "{err}");
}

#[test]
fn failpoints_env_var_reaches_the_binary() {
    let dir = tmpdir();
    let matrix = dir.join("fp.tsv");
    let ck = dir.join("fp.rck");
    regcluster_matrix::io::write_matrix_file(&regcluster_datagen::running_example(), &matrix)
        .unwrap();

    // A malformed spec is refused up front.
    let out = bin()
        .env("FAILPOINTS", "no::such::site=panic")
        .arg("help")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("FAILPOINTS"), "{err}");

    // An injected worker panic surfaces as a mining error — and the
    // final checkpoint still gets flushed on the way down.
    let out = bin()
        .env("FAILPOINTS", "engine::worker=panic@1")
        .args([
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--min-genes",
            "3",
            "--min-conds",
            "5",
            "--gamma",
            "0.15",
            "--epsilon",
            "0.1",
            "--threads",
            "2",
            "--checkpoint",
            ck.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "injected panic must fail the run");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("injected failpoint panic"), "{err}");
    assert!(ck.exists(), "crash checkpoint must be flushed");

    // With the environment clean, resuming that crash snapshot succeeds.
    let out = bin()
        .args([
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--min-genes",
            "3",
            "--min-conds",
            "5",
            "--gamma",
            "0.15",
            "--epsilon",
            "0.1",
            "--threads",
            "2",
            "--resume",
            ck.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("mined 1 reg-clusters"), "{text}");
}

#[test]
fn baseline_alias_warns_once_on_stderr_and_still_works() {
    let dir = tmpdir();
    let matrix = dir.join("baseline-warn.tsv");
    regcluster_matrix::io::write_matrix_file(&regcluster_datagen::running_example(), &matrix)
        .unwrap();

    // The deprecated alias still runs, but stderr carries exactly one
    // deprecation line pointing at the replacement.
    let out = bin()
        .args([
            "baseline",
            "--input",
            matrix.to_str().unwrap(),
            "--algorithm",
            "pcluster",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert_eq!(
        err.matches("deprecated").count(),
        1,
        "exactly one deprecation line: {err}"
    );
    assert!(
        err.contains("mine --engine"),
        "points at replacement: {err}"
    );

    // The warning precedes parsing, so even a malformed baseline call
    // carries it — still exactly once.
    let out = bin().arg("baseline").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert_eq!(err.matches("deprecated").count(), 1, "{err}");

    // The replacement spelling is warning-free.
    let out = bin()
        .args([
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--engine",
            "pcluster",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        !err.contains("deprecated"),
        "`mine --engine` must not warn: {err}"
    );
}

#[test]
fn delta_mine_through_the_binary_matches_full_remine() {
    let dir = tmpdir();
    let gens = dir.join("delta-lineage");
    let m0 = dir.join("delta-gen0.tsv");
    let m1 = dir.join("delta-gen1.tsv");

    // Two measurements of the same panel: the second re-measures a
    // handful of genes (rows 3 and 17 shifted + rescaled).
    let cfg = regcluster_datagen::SyntheticConfig {
        n_genes: 80,
        n_conds: 12,
        n_clusters: 2,
        cluster_gene_frac: 0.08,
        noise_sigma: 0.0,
        seed: 23,
        ..Default::default()
    };
    let mut matrix = regcluster_datagen::generate(&cfg).unwrap().matrix;
    regcluster_matrix::io::write_matrix_file(&matrix, &m0).unwrap();
    for row in [3usize, 17] {
        for c in 0..matrix.n_conditions() {
            let v = matrix.value(row, c);
            matrix.set_value(row, c, v * 1.1 + 0.4);
        }
    }
    regcluster_matrix::io::write_matrix_file(&matrix, &m1).unwrap();

    let mine = |input: &PathBuf, extra: &[&str]| {
        let mut args = vec![
            "mine".to_string(),
            "--input".into(),
            input.to_str().unwrap().into(),
            "--min-genes".into(),
            "4".into(),
            "--min-conds".into(),
            "4".into(),
            "--gamma".into(),
            "0.1".into(),
            "--epsilon".into(),
            "0.05".into(),
        ];
        args.extend(extra.iter().map(|s| (*s).to_string()));
        let out = bin().args(&args).output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    // Generation 0, then a delta mine of the re-measured matrix into the
    // same lineage. `--store` enters generations mode for an existing
    // directory, so the lineage dir is made first.
    std::fs::create_dir_all(&gens).unwrap();
    let text = mine(&m0, &["--store", gens.to_str().unwrap()]);
    assert!(text.contains("generation 0 published"), "{text}");
    let prev = gens.join("gen-0.rcs");
    let text = mine(
        &m1,
        &[
            "--store",
            gens.to_str().unwrap(),
            "--delta-from",
            prev.to_str().unwrap(),
        ],
    );
    assert!(text.contains("delta-mined"), "{text}");
    assert!(text.contains("generation 1 published"), "{text}");

    // Bit-identical to mining the new matrix from scratch.
    let scratch = dir.join("delta-scratch.rcs");
    mine(&m1, &["--store", scratch.to_str().unwrap()]);
    let delta_store = regcluster_store::ClusterStore::open(gens.join("gen-1.rcs")).unwrap();
    let full_store = regcluster_store::ClusterStore::open(&scratch).unwrap();
    let delta: Vec<_> = delta_store.iter().collect::<Result<_, _>>().unwrap();
    let full: Vec<_> = full_store.iter().collect::<Result<_, _>>().unwrap();
    assert!(!full.is_empty(), "workload must mine something");
    assert_eq!(delta, full, "delta store drifted from a full re-mine");
    assert_eq!(delta_store.generation(), 1);
}

#[test]
fn delta_mine_composes_with_post_filters() {
    let dir = tmpdir();
    let m0 = dir.join("deltafilter-gen0.tsv");
    let m1 = dir.join("deltafilter-gen1.tsv");

    let cfg = regcluster_datagen::SyntheticConfig {
        n_genes: 80,
        n_conds: 12,
        n_clusters: 2,
        cluster_gene_frac: 0.08,
        noise_sigma: 0.0,
        seed: 29,
        ..Default::default()
    };
    let mut matrix = regcluster_datagen::generate(&cfg).unwrap().matrix;
    regcluster_matrix::io::write_matrix_file(&matrix, &m0).unwrap();
    for row in [5usize, 40] {
        for c in 0..matrix.n_conditions() {
            let v = matrix.value(row, c);
            matrix.set_value(row, c, v * 0.9 - 0.2);
        }
    }
    regcluster_matrix::io::write_matrix_file(&matrix, &m1).unwrap();

    let mine = |input: &PathBuf, extra: &[&str]| {
        let mut args = vec![
            "mine".to_string(),
            "--input".into(),
            input.to_str().unwrap().into(),
            "--min-genes".into(),
            "4".into(),
            "--min-conds".into(),
            "4".into(),
            "--gamma".into(),
            "0.1".into(),
            "--epsilon".into(),
            "0.05".into(),
        ];
        args.extend(extra.iter().map(|s| (*s).to_string()));
        bin().args(&args).output().unwrap()
    };
    let expect_ok = |out: std::process::Output| {
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    // An *unfiltered* generation 0 to delta against.
    let prev = dir.join("deltafilter-prev.rcs");
    expect_ok(mine(&m0, &["--store", prev.to_str().unwrap()]));

    // The post-filters run after the splice, so a filtered delta mine must
    // equal a filtered from-scratch mine of the new matrix.
    let filters = ["--maximal-only", "--max-clusters", "7"];
    let delta_store_path = dir.join("deltafilter-delta.rcs");
    let text = expect_ok(mine(
        &m1,
        &[
            "--delta-from",
            prev.to_str().unwrap(),
            "--store",
            delta_store_path.to_str().unwrap(),
            filters[0],
            filters[1],
            filters[2],
        ],
    ));
    assert!(text.contains("delta-mined"), "{text}");
    let full_store_path = dir.join("deltafilter-full.rcs");
    expect_ok(mine(
        &m1,
        &[
            "--store",
            full_store_path.to_str().unwrap(),
            filters[0],
            filters[1],
            filters[2],
        ],
    ));
    let delta_store = regcluster_store::ClusterStore::open(&delta_store_path).unwrap();
    let full_store = regcluster_store::ClusterStore::open(&full_store_path).unwrap();
    let delta: Vec<_> = delta_store.iter().collect::<Result<_, _>>().unwrap();
    let full: Vec<_> = full_store.iter().collect::<Result<_, _>>().unwrap();
    assert!(!full.is_empty(), "workload must mine something");
    assert!(
        full.len() <= 7,
        "--max-clusters must cap the result, got {}",
        full.len()
    );
    assert_eq!(
        delta, full,
        "filtered delta drifted from a filtered full mine"
    );

    // A *filtered* previous store cannot be spliced from: the filters
    // dropped clusters across root boundaries.
    let out = mine(
        &m1,
        &[
            "--delta-from",
            full_store_path.to_str().unwrap(),
            filters[0],
            filters[1],
            filters[2],
        ],
    );
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unfiltered"), "{err}");
}

#[test]
fn rwave_subcommand_via_binary() {
    let dir = tmpdir();
    let matrix = dir.join("running.tsv");
    regcluster_matrix::io::write_matrix_file(&regcluster_datagen::running_example(), &matrix)
        .unwrap();
    let out = bin()
        .args([
            "rwave",
            "--input",
            matrix.to_str().unwrap(),
            "--gene",
            "g2",
            "--gamma",
            "0.15",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("γ_i = 4.5"), "{text}");
    assert!(text.contains("c10 ↰ c5"), "{text}");
}
