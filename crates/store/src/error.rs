//! Typed failures of the store subsystem.
//!
//! Every way a `.rcs` file can be unreadable — truncation, bit flips,
//! foreign files, future format versions — maps to a distinct
//! [`StoreError`] variant. The reader never panics on malformed input and
//! never returns silently-garbage clusters: all section payloads are
//! checksummed and every record access is bounds-checked.

use std::fmt;

/// A failure while writing, opening or querying a cluster store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file is not a `.rcs` store at all (bad magic) or is structurally
    /// impossible (header or section table out of bounds, overlapping or
    /// truncated sections). The message names the offending structure.
    Format(String),
    /// The file declares a format version this build cannot read.
    Version {
        /// Version found in the header.
        found: u32,
        /// The version this build writes and reads.
        supported: u32,
    },
    /// A section's payload does not match its recorded checksum — the file
    /// was corrupted after writing (flipped bits, partial overwrite).
    ChecksumMismatch {
        /// Human-readable section name (e.g. `"clusters"`, `"gene-index"`).
        section: &'static str,
        /// Checksum recorded in the section table.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// A cluster id past the end of the store was requested.
    ClusterOutOfBounds {
        /// The requested id.
        id: u32,
        /// Number of clusters in the store.
        len: u32,
    },
    /// The store's provenance metadata (mining parameters JSON) failed to
    /// round-trip.
    Metadata(String),
    /// A gene or condition id in a cluster handed to the writer exceeds the
    /// dictionary handed to [`StoreWriter::create`](crate::StoreWriter::create).
    IdOutOfRange(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Format(m) => write!(f, "not a valid .rcs store: {m}"),
            StoreError::Version { found, supported } => write!(
                f,
                "unsupported .rcs format version {found} (this build reads version {supported})"
            ),
            StoreError::ChecksumMismatch {
                section,
                expected,
                actual,
            } => write!(
                f,
                "corrupted .rcs store: {section} section checksum mismatch \
                 (expected {expected:#018x}, got {actual:#018x})"
            ),
            StoreError::ClusterOutOfBounds { id, len } => {
                write!(f, "cluster id {id} out of bounds (store holds {len})")
            }
            StoreError::Metadata(m) => write!(f, "store metadata error: {m}"),
            StoreError::IdOutOfRange(m) => write!(f, "id out of range: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StoreError::Version {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        let e = StoreError::ChecksumMismatch {
            section: "clusters",
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("clusters"));
        assert!(e.to_string().contains("corrupted"));
        let e = StoreError::ClusterOutOfBounds { id: 7, len: 3 };
        assert!(e.to_string().contains('7'));
    }
}
