//! Representative regulation chains.

use regcluster_matrix::CondId;
use serde::{Deserialize, Serialize};

/// An ordered series of conditions connected by regulation pointers:
/// `c_{k1} ↰ c_{k2} ↰ … ↰ c_{km}` (§4 of the paper).
///
/// The chain is stored in regulation order: a **p-member** gene's expression
/// strictly increases along it (each step exceeding the gene's `γ_i`), an
/// **n-member** gene's expression strictly decreases along it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegulationChain(pub Vec<CondId>);

impl RegulationChain {
    /// Chain length (number of conditions).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty chain (the root of the enumeration tree).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The inverted chain `c_{km} ↰ … ↰ c_{k1}` — the chain that this
    /// chain's n-members follow as p-members.
    #[must_use]
    pub fn invert(&self) -> Self {
        let mut v = self.0.clone();
        v.reverse();
        Self(v)
    }

    /// Renders the chain with condition labels, e.g. `c7 ↰ c9 ↰ c5`.
    pub fn display_with(&self, names: &[String]) -> String {
        let parts: Vec<&str> = self.0.iter().map(|&c| names[c].as_str()).collect();
        parts.join(" ↰ ")
    }
}

impl std::fmt::Display for RegulationChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|c| format!("#{c}")).collect();
        write!(f, "{}", parts.join(" ↰ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invert_reverses() {
        let c = RegulationChain(vec![6, 8, 4, 0, 2]);
        assert_eq!(c.invert().0, vec![2, 0, 4, 8, 6]);
        assert_eq!(c.invert().invert(), c);
        assert_eq!(c.len(), 5);
        assert!(!c.is_empty());
        assert!(RegulationChain(vec![]).is_empty());
    }

    #[test]
    fn displays_with_labels() {
        let names: Vec<String> = (1..=10).map(|i| format!("c{i}")).collect();
        let c = RegulationChain(vec![6, 8, 4]);
        assert_eq!(c.display_with(&names), "c7 ↰ c9 ↰ c5");
        assert_eq!(format!("{c}"), "#6 ↰ #8 ↰ #4");
    }
}
