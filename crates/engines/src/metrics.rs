//! Per-engine run metrics: counters labeled with the engine name, so one
//! registry can compare `reg-cluster` against any baseline run through the
//! same pipeline. Documented in `docs/OBSERVABILITY.md` (guarded by the
//! CLI's docs-drift test).

use regcluster_core::EngineReport;
use regcluster_obs::{Counter, MetricsRegistry};

/// Counters for one engine's runs.
///
/// Register once per engine name (idempotent — the registry hands back the
/// same cells) and call [`EngineMetrics::record`] with each run's report.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    runs: Counter,
    clusters: Counter,
    truncated: Counter,
    sink_stops: Counter,
}

impl EngineMetrics {
    /// Registers the engine-labeled counter family in `registry`.
    pub fn register(registry: &MetricsRegistry, engine: &str) -> Self {
        let labels: &[(&str, &str)] = &[("engine", engine)];
        Self {
            runs: registry.counter(
                "regcluster_engine_runs_total",
                "Completed engine runs, by engine name",
                labels,
            ),
            clusters: registry.counter(
                "regcluster_engine_clusters_emitted_total",
                "Clusters the engine offered to its sink, by engine name",
                labels,
            ),
            truncated: registry.counter(
                "regcluster_engine_runs_truncated_total",
                "Engine runs cut short by cancellation or a deadline, by engine name",
                labels,
            ),
            sink_stops: registry.counter(
                "regcluster_engine_runs_sink_stopped_total",
                "Engine runs stopped early by a refusing sink, by engine name",
                labels,
            ),
        }
    }

    /// Records one finished run.
    pub fn record(&self, report: &EngineReport) {
        self.runs.inc();
        self.clusters.add(report.n_emitted as u64);
        if report.truncated {
            self.truncated.inc();
        }
        if report.stopped_by_sink {
            self.sink_stops.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_report_shape_into_labeled_counters() {
        let registry = MetricsRegistry::new();
        let metrics = EngineMetrics::register(&registry, "pcluster");
        metrics.record(&EngineReport::completed(3));
        metrics.record(&EngineReport::interrupted(1).with_stopped_by_sink(true));
        let json = registry.encode_json();
        assert!(json.contains("regcluster_engine_runs_total"));
        assert!(json.contains("pcluster"));
        let text = registry.encode_prometheus();
        assert!(text.contains("regcluster_engine_clusters_emitted_total"));
        // Same name, different engine label: independent cells.
        let other = EngineMetrics::register(&registry, "floc");
        other.record(&EngineReport::completed(0));
        assert!(registry.encode_prometheus().contains("floc"));
    }
}
