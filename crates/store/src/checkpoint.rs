//! The `.rck` on-disk checkpoint: a crash-safe snapshot of an interrupted
//! mining run, reusing the `.rcs` section machinery (32-byte header,
//! FNV-checksummed section table, bounds-checked little-endian decoding)
//! under its own magic and section ids.
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────┐
//! │ header (32 B)                                              │
//! │   0..8   magic  b"RCKPOINT"                                │
//! │   8..12  checkpoint version (u32 LE)                       │
//! │  12..16  section count  (u32 LE)                           │
//! │  16..24  section-table offset (u64 LE)                     │
//! │  24..32  section-table checksum (FNV-1a 64, u64 LE)        │
//! ├────────────────────────────────────────────────────────────┤
//! │ META     n_genes, n_conds, matrix_fingerprint (u64 each),  │
//! │          then mining-params JSON                           │
//! │ PENDING  count u64, then per frontier node:                │
//! │            chain_len u32, member_len u32,                  │
//! │            chain ids u32 LE each, then per member           │
//! │            gene u32, flags u32 (bit 0 = forward),          │
//! │            denom_bits u64                                  │
//! │ EMITTED  count u64, then packed cluster records exactly as │
//! │          the `.rcs` CLUSTERS section encodes them          │
//! ├────────────────────────────────────────────────────────────┤
//! │ section table: count × 32 B (same entry layout as `.rcs`)  │
//! └────────────────────────────────────────────────────────────┘
//! ```
//!
//! [`CheckpointFile`] implements the engine's
//! [`CheckpointSink`](regcluster_core::CheckpointSink) and persists every
//! snapshot with the same tmp + fsync + rename + parent-fsync discipline
//! as [`StoreWriter::finish`](crate::StoreWriter::finish): the `.rck` path
//! always holds either the previous complete checkpoint or the new one.
//! [`read_checkpoint`] verifies every checksum before decoding, so a torn
//! or bit-flipped file is rejected — resuming then falls back to a fresh
//! run instead of silently mining a corrupt frontier.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use regcluster_core::{CheckpointSink, EngineCheckpoint, MiningParams, PendingMember, PendingNode};

use crate::error::StoreError;
use crate::format::{put_u32, put_u64, ByteReader, Fnv64, HEADER_LEN, SECTION_ENTRY_LEN};
use crate::writer::{decode_record, sync_parent_dir, tmp_path};

/// File magic, first 8 bytes of every checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"RCKPOINT";

/// The checkpoint format version this build writes and reads.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Section ids of the `.rck` layout (distinct from the `.rcs` ids).
const META: u32 = 1;
const PENDING: u32 = 2;
const EMITTED: u32 = 3;

/// A checkpoint sink that persists every engine snapshot atomically to one
/// `.rck` path.
///
/// Each [`save`](CheckpointSink::save) encodes the full snapshot, streams
/// it to `<path>.tmp`, fsyncs, renames over `path`, and fsyncs the parent
/// directory — so a crash mid-save leaves the previous complete checkpoint
/// intact. The `checkpoint::save` failpoint fires once per save for chaos
/// testing (see `docs/ROBUSTNESS.md`).
#[derive(Debug, Clone)]
pub struct CheckpointFile {
    path: PathBuf,
}

impl CheckpointFile {
    /// A sink writing checkpoints to `path` (conventionally `*.rck`).
    pub fn new(path: impl AsRef<Path>) -> Self {
        CheckpointFile {
            path: path.as_ref().to_path_buf(),
        }
    }

    /// The destination path snapshots are renamed onto.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn save_inner(&self, checkpoint: &EngineCheckpoint) -> Result<(), StoreError> {
        let bytes = encode_checkpoint(checkpoint)?;
        regcluster_failpoint::io("checkpoint::save")?;
        let tmp = tmp_path(&self.path);
        let result = (|| -> std::io::Result<()> {
            let mut file = File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&tmp, &self.path)?;
            sync_parent_dir(&self.path)
        })();
        if result.is_err() {
            // If the failure happened after the rename the tmp is already
            // gone and this is a no-op.
            let _ = std::fs::remove_file(&tmp);
        }
        result.map_err(StoreError::Io)
    }
}

impl CheckpointSink for CheckpointFile {
    fn save(&self, checkpoint: &EngineCheckpoint) -> std::io::Result<()> {
        self.save_inner(checkpoint).map_err(|e| match e {
            StoreError::Io(io) => io,
            other => std::io::Error::other(other.to_string()),
        })
    }
}

/// Encodes a snapshot into the complete `.rck` byte image.
fn encode_checkpoint(ck: &EngineCheckpoint) -> Result<Vec<u8>, StoreError> {
    let params_json =
        serde_json::to_string(&ck.params).map_err(|e| StoreError::Metadata(e.to_string()))?;

    let mut meta = Vec::new();
    put_u64(&mut meta, ck.n_genes as u64);
    put_u64(&mut meta, ck.n_conditions as u64);
    put_u64(&mut meta, ck.matrix_fingerprint);
    meta.extend_from_slice(params_json.as_bytes());

    let mut pending = Vec::new();
    put_u64(&mut pending, ck.pending.len() as u64);
    for node in &ck.pending {
        put_u32(&mut pending, node.chain.len() as u32);
        put_u32(&mut pending, node.members.len() as u32);
        for &c in &node.chain {
            put_u32(&mut pending, c as u32);
        }
        for m in &node.members {
            put_u32(&mut pending, m.gene as u32);
            put_u32(&mut pending, u32::from(m.forward));
            put_u64(&mut pending, m.denom_bits);
        }
    }

    let mut emitted = Vec::new();
    put_u64(&mut emitted, ck.emitted.len() as u64);
    for c in &ck.emitted {
        put_u32(&mut emitted, c.chain.len() as u32);
        put_u32(&mut emitted, c.p_members.len() as u32);
        put_u32(&mut emitted, c.n_members.len() as u32);
        for ids in [&c.chain, &c.p_members, &c.n_members] {
            for &v in ids.iter() {
                put_u32(&mut emitted, v as u32);
            }
        }
    }

    let sections: [(u32, &[u8]); 3] = [(META, &meta), (PENDING, &pending), (EMITTED, &emitted)];
    let mut out = vec![0u8; HEADER_LEN];
    let mut table = Vec::with_capacity(sections.len() * SECTION_ENTRY_LEN);
    for (id, payload) in sections {
        put_u32(&mut table, id);
        put_u32(&mut table, 0);
        put_u64(&mut table, out.len() as u64);
        put_u64(&mut table, payload.len() as u64);
        put_u64(&mut table, Fnv64::hash(payload));
        out.extend_from_slice(payload);
    }
    let table_offset = out.len() as u64;
    let table_checksum = Fnv64::hash(&table);
    out.extend_from_slice(&table);

    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&CHECKPOINT_MAGIC);
    put_u32(&mut header, CHECKPOINT_VERSION);
    put_u32(&mut header, sections.len() as u32);
    put_u64(&mut header, table_offset);
    put_u64(&mut header, table_checksum);
    debug_assert_eq!(header.len(), HEADER_LEN);
    out[..HEADER_LEN].copy_from_slice(&header);
    Ok(out)
}

/// Reads and fully verifies a `.rck` checkpoint.
///
/// Every section checksum and all structural bounds are checked before the
/// snapshot is handed back; the engine then re-validates it against the
/// actual matrix and parameters at resume time.
///
/// # Errors
///
/// * [`StoreError::Io`] — the file cannot be read;
/// * [`StoreError::Format`] — bad magic, truncation, structural damage;
/// * [`StoreError::Version`] — written by an incompatible build;
/// * [`StoreError::ChecksumMismatch`] — bit rot or a torn write;
/// * [`StoreError::Metadata`] — parameter provenance unreadable.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<EngineCheckpoint, StoreError> {
    let buf = std::fs::read(path.as_ref())?;
    if buf.len() < HEADER_LEN {
        return Err(StoreError::Format(format!(
            "checkpoint header: file is {} bytes, need at least {HEADER_LEN}",
            buf.len()
        )));
    }
    if buf[..8] != CHECKPOINT_MAGIC {
        return Err(StoreError::Format(
            "not a regcluster checkpoint (bad magic)".into(),
        ));
    }
    let mut h = ByteReader::new(&buf[8..HEADER_LEN], "checkpoint header");
    let version = h.u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(StoreError::Version {
            found: version,
            supported: CHECKPOINT_VERSION,
        });
    }
    let n_sections = h.u32()? as usize;
    let table_offset = h.u64()? as usize;
    let table_len = n_sections
        .checked_mul(SECTION_ENTRY_LEN)
        .ok_or_else(|| StoreError::Format("checkpoint header: section count overflow".into()))?;
    let table_checksum = h.u64()?;
    let table_end = table_offset
        .checked_add(table_len)
        .filter(|&end| end <= buf.len())
        .ok_or_else(|| {
            StoreError::Format("checkpoint header: section table past end of file".into())
        })?;
    let table = &buf[table_offset..table_end];
    let actual = Fnv64::hash(table);
    if actual != table_checksum {
        return Err(StoreError::ChecksumMismatch {
            section: "checkpoint section table",
            expected: table_checksum,
            actual,
        });
    }

    let mut meta = None;
    let mut pending = None;
    let mut emitted = None;
    let mut t = ByteReader::new(table, "checkpoint section table");
    for _ in 0..n_sections {
        let id = t.u32()?;
        let _reserved = t.u32()?;
        let offset = t.u64()? as usize;
        let len = t.u64()? as usize;
        let checksum = t.u64()?;
        let end = offset
            .checked_add(len)
            .filter(|&end| end <= buf.len())
            .ok_or_else(|| {
                StoreError::Format(format!("checkpoint section {id} past end of file"))
            })?;
        let payload = &buf[offset..end];
        let actual = Fnv64::hash(payload);
        if actual != checksum {
            return Err(StoreError::ChecksumMismatch {
                section: match id {
                    META => "checkpoint meta",
                    PENDING => "checkpoint pending",
                    EMITTED => "checkpoint emitted",
                    _ => "checkpoint section",
                },
                expected: checksum,
                actual,
            });
        }
        match id {
            META => meta = Some(payload),
            PENDING => pending = Some(payload),
            EMITTED => emitted = Some(payload),
            other => {
                return Err(StoreError::Format(format!(
                    "checkpoint section table: unknown section id {other}"
                )))
            }
        }
    }
    let meta = meta.ok_or_else(|| StoreError::Format("checkpoint: missing meta section".into()))?;
    let pending =
        pending.ok_or_else(|| StoreError::Format("checkpoint: missing pending section".into()))?;
    let emitted =
        emitted.ok_or_else(|| StoreError::Format("checkpoint: missing emitted section".into()))?;

    let mut m = ByteReader::new(meta, "checkpoint meta");
    let n_genes = m.u64()? as usize;
    let n_conditions = m.u64()? as usize;
    let matrix_fingerprint = m.u64()?;
    let params_raw = m.bytes(m.remaining())?;
    let params_str = std::str::from_utf8(params_raw)
        .map_err(|_| StoreError::Metadata("checkpoint params JSON is not UTF-8".into()))?;
    let params: MiningParams = serde_json::from_str(params_str)
        .map_err(|e| StoreError::Metadata(format!("checkpoint params JSON unreadable: {e}")))?;

    let mut p = ByteReader::new(pending, "checkpoint pending");
    let n_pending = p.u64()? as usize;
    let mut pending_nodes = Vec::with_capacity(n_pending.min(1 << 16));
    for _ in 0..n_pending {
        let chain_len = p.u32()? as usize;
        let member_len = p.u32()? as usize;
        let mut chain = Vec::with_capacity(chain_len.min(1 << 16));
        for _ in 0..chain_len {
            chain.push(p.u32()? as usize);
        }
        let mut members = Vec::with_capacity(member_len.min(1 << 16));
        for _ in 0..member_len {
            let gene = p.u32()? as usize;
            let flags = p.u32()?;
            let denom_bits = p.u64()?;
            members.push(PendingMember {
                gene,
                forward: flags & 1 != 0,
                denom_bits,
            });
        }
        pending_nodes.push(PendingNode { chain, members });
    }
    if p.remaining() != 0 {
        return Err(StoreError::Format(format!(
            "checkpoint pending: {} trailing bytes after last node",
            p.remaining()
        )));
    }

    let mut e = ByteReader::new(emitted, "checkpoint emitted");
    let n_emitted = e.u64()? as usize;
    let records = e.bytes(e.remaining())?;
    let mut emitted_clusters = Vec::with_capacity(n_emitted.min(1 << 16));
    let mut off = 0u64;
    for _ in 0..n_emitted {
        let (cluster, used) = decode_record(records, off)?;
        emitted_clusters.push(cluster);
        off += used as u64;
    }
    if off != records.len() as u64 {
        return Err(StoreError::Format(format!(
            "checkpoint emitted: {} trailing bytes after last record",
            records.len() as u64 - off
        )));
    }

    Ok(EngineCheckpoint {
        params,
        n_genes,
        n_conditions,
        matrix_fingerprint,
        pending: pending_nodes,
        emitted: emitted_clusters,
    })
}
