//! Property-based tests of the evaluation metrics.

use proptest::prelude::*;

use regcluster_eval::go::{hypergeom_upper_tail, ln_choose, ln_gamma};
use regcluster_eval::{cell_match_score, gene_match_score, recovery, relevance, ClusterShape};

fn shape_strategy() -> impl Strategy<Value = ClusterShape> {
    (
        prop::collection::btree_set(0usize..30, 1..10),
        prop::collection::btree_set(0usize..12, 1..6),
    )
        .prop_map(|(genes, conds)| {
            ClusterShape::new(genes.into_iter().collect(), conds.into_iter().collect())
        })
}

proptest! {
    /// Match scores are symmetric, bounded, and 1 iff identical sets.
    #[test]
    fn match_score_properties(a in shape_strategy(), b in shape_strategy()) {
        for score in [gene_match_score, cell_match_score] {
            let s = score(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - score(&b, &a)).abs() < 1e-12, "symmetry");
        }
        prop_assert_eq!(gene_match_score(&a, &a), 1.0);
        prop_assert_eq!(cell_match_score(&a, &a), 1.0);
        if gene_match_score(&a, &b) == 1.0 {
            prop_assert_eq!(&a.genes, &b.genes);
        }
        if cell_match_score(&a, &b) == 1.0 {
            prop_assert_eq!(a, b);
        }
    }

    /// Recovery/relevance are bounded, and perfect output gives 1.0 both
    /// ways; adding junk to the output never lowers recovery but can only
    /// lower (or keep) relevance.
    #[test]
    fn recovery_relevance_properties(
        truth in prop::collection::vec(shape_strategy(), 1..5),
        junk in prop::collection::vec(shape_strategy(), 0..5),
    ) {
        prop_assert!((recovery(&truth, &truth) - 1.0).abs() < 1e-12);
        prop_assert!((relevance(&truth, &truth) - 1.0).abs() < 1e-12);

        let mut padded = truth.clone();
        padded.extend(junk.iter().cloned());
        let rec = recovery(&truth, &padded);
        prop_assert!((rec - 1.0).abs() < 1e-12, "superset output keeps recovery at 1");
        let rel = relevance(&padded, &truth);
        prop_assert!(rel <= 1.0 + 1e-12);
        prop_assert!(rel >= relevance(&padded, &[]) - 1e-12);
    }

    /// ln Γ satisfies the recurrence Γ(x+1) = x·Γ(x) across the domain.
    #[test]
    fn ln_gamma_recurrence(x in 0.1f64..170.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-8, "x = {x}: {lhs} vs {rhs}");
    }

    /// Pascal's rule in log space: C(n, k) = C(n−1, k−1) + C(n−1, k).
    #[test]
    fn ln_choose_pascal(n in 2usize..60, k in 1usize..59) {
        prop_assume!(k < n);
        let lhs = ln_choose(n, k).exp();
        let rhs = ln_choose(n - 1, k - 1).exp() + ln_choose(n - 1, k).exp();
        prop_assert!((lhs - rhs).abs() / rhs < 1e-9);
    }

    /// The hypergeometric upper tail is a valid survival function: bounded,
    /// monotone non-increasing in k, equal to 1 at k = 0.
    #[test]
    fn hypergeom_survival_properties(
        n_pop in 2usize..80,
        k_pop_frac in 0.0f64..1.0,
        n_draw_frac in 0.0f64..1.0,
    ) {
        let k_pop = ((n_pop as f64) * k_pop_frac) as usize;
        let n_draw = (((n_pop as f64) * n_draw_frac) as usize).max(1).min(n_pop);
        let mut prev = 1.0f64;
        for k in 0..=n_draw.min(k_pop) {
            let p = hypergeom_upper_tail(n_pop, k_pop, n_draw, k);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p <= prev + 1e-9, "monotone at k = {k}");
            prev = p;
        }
        prop_assert_eq!(hypergeom_upper_tail(n_pop, k_pop, n_draw, 0), 1.0);
    }

    /// Complement identity: P(X ≥ 1) + P(X = 0) = 1.
    #[test]
    fn hypergeom_complement(n_pop in 2usize..60, k_pop in 1usize..59, n_draw in 1usize..59) {
        prop_assume!(k_pop < n_pop && n_draw <= n_pop);
        let p_ge1 = hypergeom_upper_tail(n_pop, k_pop, n_draw, 1);
        // P(X = 0) = C(N−K, n) / C(N, n); zero when n > N − K.
        let p0 = if n_draw > n_pop - k_pop {
            0.0
        } else {
            (ln_choose(n_pop - k_pop, n_draw) - ln_choose(n_pop, n_draw)).exp()
        };
        prop_assert!((p_ge1 + p0 - 1.0).abs() < 1e-9);
    }
}
