#![warn(missing_docs)]

//! Dataset generators for the reg-cluster workspace.
//!
//! * [`running_example`] — Table 1 of the paper (3 genes × 10 conditions),
//!   the dataset behind Figures 2, 3, 4 and 6;
//! * [`synthetic`] — the paper's §5 synthetic generator: a uniform random
//!   background with `#clus` perfect shifting-and-scaling clusters embedded,
//!   parameterized by `#g`, `#cond` and `#clus`, with full ground truth;
//! * [`mod@yeast_like`] — a structured 2884 × 17 stand-in for the
//!   Tavazoie/Church yeast benchmark (substitution S1 of DESIGN.md), with
//!   planted co-regulation modules and a matching synthetic GO annotation
//!   database (substitution S2);
//! * [`go`] — the synthetic GO annotation database types.
//!
//! All generators are deterministic given their seed (ChaCha8-based).
//!
//! **Seed-stream compatibility:** since the workspace switched to the
//! vendored `rand_chacha` stub (see `vendor/README.md`), the ChaCha8
//! keystream is deliberately *not* bit-compatible with the upstream crate.
//! Generators remain deterministic — the same seed always reproduces the
//! same dataset under the same build — but datasets generated with a given
//! seed under upstream `rand_chacha` (before the vendoring) do not
//! reproduce cell-for-cell under the stub, and vice versa. Statistical
//! structure (planted clusters, margins, noise levels) is unaffected.

mod error;

pub mod go;
pub mod synthetic;
pub mod yeast_like;

pub use error::DatagenError;
pub use go::{GoCategory, GoDatabase, GoTerm};
pub use synthetic::{generate, PatternKind, PlantedCluster, SyntheticConfig, SyntheticDataset};
pub use yeast_like::{yeast_like, YeastConfig, YeastDataset};

use regcluster_matrix::ExpressionMatrix;

/// Table 1 of the paper: the running dataset with genes `g1..g3` and
/// conditions `c1..c10`.
///
/// Gene and condition indices are zero-based (`g1` is gene 0, `c7` is
/// condition 6). Its unique reg-cluster at `γ = 0.15`, `ε = 0.1`,
/// `MinG = 3`, `MinC = 5` is the chain `c7 ↰ c9 ↰ c5 ↰ c1 ↰ c3` with
/// p-members `{g1, g3}` and n-member `{g2}`.
pub fn running_example() -> ExpressionMatrix {
    ExpressionMatrix::from_rows(
        vec!["g1".into(), "g2".into(), "g3".into()],
        (1..=10).map(|i| format!("c{i}")).collect(),
        vec![
            vec![10.0, -14.5, 15.0, 10.5, 0.0, 14.5, -15.0, 0.0, -5.0, -5.0],
            vec![20.0, 15.0, 15.0, 43.5, 30.0, 44.0, 45.0, 43.0, 35.0, 20.0],
            vec![6.0, -3.8, 8.0, 6.2, 2.0, 7.8, -4.0, 2.0, 0.0, 0.0],
        ],
    )
    .expect("the running dataset is well-formed")
}

/// The six profiles of Figure 1 of the paper: `P1 = P2 − 5 = P3 − 15 = P4 =
/// P5/1.5 = P6/3`, i.e. pure shifting images (P2, P3) and pure scaling
/// images (P5, P6) of the base pattern P1 = P4.
pub fn figure1_patterns() -> ExpressionMatrix {
    let p1 = [5.0f64, 8.0, 6.0, 9.0, 7.0, 10.0];
    let rows: Vec<Vec<f64>> = vec![
        p1.to_vec(),
        p1.iter().map(|v| v + 5.0).collect(),
        p1.iter().map(|v| v + 15.0).collect(),
        p1.to_vec(),
        p1.iter().map(|v| v * 1.5).collect(),
        p1.iter().map(|v| v * 3.0).collect(),
    ];
    ExpressionMatrix::from_rows(
        (1..=6).map(|i| format!("P{i}")).collect(),
        (1..=6).map(|i| format!("c{i}")).collect(),
        rows,
    )
    .expect("figure 1 patterns are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_matches_table_1() {
        let m = running_example();
        assert_eq!(m.n_genes(), 3);
        assert_eq!(m.n_conditions(), 10);
        assert_eq!(m.value(0, 0), 10.0);
        assert_eq!(m.value(1, 3), 43.5);
        assert_eq!(m.value(2, 1), -3.8);
        assert_eq!(m.gene_name(0), "g1");
        assert_eq!(m.condition_name(6), "c7");
    }

    #[test]
    fn figure2_relationships_hold() {
        // d_{1,{5,1,3,9,7}} = 2.5 * d_{3,{5,1,3,9,7}} − 5 and
        // d_{2,...} = −2.5 * d_{3,...} + 35 = −d_{1,...} + 30.
        let m = running_example();
        for c in [4usize, 0, 2, 8, 6] {
            let (d1, d2, d3) = (m.value(0, c), m.value(1, c), m.value(2, c));
            assert!((d1 - (2.5 * d3 - 5.0)).abs() < 1e-9, "condition {c}");
            assert!((d2 - (-2.5 * d3 + 35.0)).abs() < 1e-9, "condition {c}");
            assert!((d2 - (-d1 + 30.0)).abs() < 1e-9, "condition {c}");
        }
    }

    #[test]
    fn figure4_projection_is_affine_between_g1_and_g3_only() {
        // d_{3,{2,4,8,10}} = 0.4 * d_{1,{2,4,8,10}} + 2; g2 unrelated.
        let m = running_example();
        for c in [1usize, 3, 7, 9] {
            assert!((m.value(2, c) - (0.4 * m.value(0, c) + 2.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn figure1_patterns_have_documented_relationships() {
        let m = figure1_patterns();
        for c in 0..6 {
            let p1 = m.value(0, c);
            assert_eq!(m.value(1, c), p1 + 5.0);
            assert_eq!(m.value(2, c), p1 + 15.0);
            assert_eq!(m.value(3, c), p1);
            assert_eq!(m.value(4, c), p1 * 1.5);
            assert_eq!(m.value(5, c), p1 * 3.0);
        }
    }
}
