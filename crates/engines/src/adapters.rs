//! [`BiclusterEngine`] adapters for the seven baseline algorithms.
//!
//! Each adapter owns its algorithm's native parameter struct, validates it
//! up front (returning [`CoreError::InvalidParams`] instead of tripping the
//! baseline crate's `assert!`s), converts the output
//! [`Bicluster`]s into [`RegCluster`]s — condition set as an ascending
//! chain, genes as `p_members`, Cheng–Church's inverted rows as
//! `n_members` — and streams them through the sink with observer events.
//!
//! Cancellation granularity: `pcluster`, `scaling` and `floc` poll their
//! [`MineControl`] *inside* the search (per gene pair batch / per
//! improvement iteration, via the baselines' `*_with_control` entry
//! points), so deadlines bound even a single long run. The remaining
//! algorithms are batch searches that complete in one pass on realistic
//! inputs; they poll once on entry and once before streaming, which is
//! enough to honor a pre-cancelled control and to stop between runs.

use regcluster_baselines::{
    cheng_church, floc_with_control, microcluster, op_cluster, opsm, pcluster_with_control,
    Bicluster, ChengChurchParams, FlocParams, MicroClusterParams, OpClusterParams, OpsmParams,
    PClusterParams,
};
use regcluster_core::{
    BiclusterEngine, ClusterSink, CoreError, EngineReport, MineControl, RegCluster,
    SyncMineObserver,
};
use regcluster_matrix::transform::log_transform;
use regcluster_matrix::ExpressionMatrix;

/// Embeds a plain bicluster into the common cluster currency: conditions
/// become the chain (ascending order), all genes are p-members.
fn to_regcluster(bc: Bicluster) -> RegCluster {
    RegCluster {
        chain: bc.conds,
        p_members: bc.genes,
        n_members: Vec::new(),
    }
}

/// Streams converted clusters into the sink, reporting each emission.
/// Returns `(n_emitted, stopped_by_sink)`.
fn emit_all(
    clusters: impl IntoIterator<Item = RegCluster>,
    sink: &dyn ClusterSink,
    observer: &dyn SyncMineObserver,
) -> (usize, bool) {
    let mut n = 0;
    for cluster in clusters {
        observer.cluster_emitted(&cluster);
        n += 1;
        if !sink.accept(cluster) {
            return (n, true);
        }
    }
    (n, false)
}

fn invalid(msg: impl Into<String>) -> CoreError {
    CoreError::InvalidParams(msg.into())
}

fn check_min_dims(min_genes: usize, min_conds: usize) -> Result<(), CoreError> {
    if min_genes < 2 || min_conds < 2 {
        return Err(invalid(
            "baseline clusters need ≥ 2 genes and ≥ 2 conditions",
        ));
    }
    Ok(())
}

fn check_delta(delta: f64, what: &str) -> Result<(), CoreError> {
    if !(delta.is_finite() && delta >= 0.0) {
        return Err(invalid(format!(
            "{what} must be finite and ≥ 0, got {delta}"
        )));
    }
    Ok(())
}

/// pCluster (pure shifting patterns) as an engine.
#[derive(Debug, Clone)]
pub struct PClusterEngine {
    params: PClusterParams,
}

impl PClusterEngine {
    /// Creates the engine.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] on out-of-domain parameters.
    pub fn new(params: PClusterParams) -> Result<Self, CoreError> {
        check_delta(params.delta, "delta")?;
        check_min_dims(params.min_genes, params.min_conds)?;
        Ok(Self { params })
    }
}

impl BiclusterEngine for PClusterEngine {
    fn name(&self) -> &str {
        "pcluster"
    }

    fn params_json(&self) -> String {
        format!(
            "{{\"delta\":{},\"min_genes\":{},\"min_conds\":{}}}",
            self.params.delta, self.params.min_genes, self.params.min_conds
        )
    }

    fn run(
        &self,
        matrix: &ExpressionMatrix,
        sink: &dyn ClusterSink,
        control: &MineControl,
        observer: &dyn SyncMineObserver,
    ) -> Result<EngineReport, CoreError> {
        let run = pcluster_with_control(matrix, &self.params, control);
        let (n, stopped) = emit_all(run.clusters.into_iter().map(to_regcluster), sink, observer);
        Ok(EngineReport {
            n_emitted: n,
            truncated: run.truncated,
            stopped_by_sink: stopped,
            stats: None,
        })
    }
}

/// pCluster on the log₂-transformed matrix (pure scaling patterns) as an
/// engine. Errors at run time when the matrix has non-positive values.
#[derive(Debug, Clone)]
pub struct ScalingEngine {
    params: PClusterParams,
}

impl ScalingEngine {
    /// Creates the engine.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] on out-of-domain parameters.
    pub fn new(params: PClusterParams) -> Result<Self, CoreError> {
        check_delta(params.delta, "delta")?;
        check_min_dims(params.min_genes, params.min_conds)?;
        Ok(Self { params })
    }
}

impl BiclusterEngine for ScalingEngine {
    fn name(&self) -> &str {
        "scaling"
    }

    fn params_json(&self) -> String {
        format!(
            "{{\"delta\":{},\"min_genes\":{},\"min_conds\":{},\"space\":\"log2\"}}",
            self.params.delta, self.params.min_genes, self.params.min_conds
        )
    }

    fn run(
        &self,
        matrix: &ExpressionMatrix,
        sink: &dyn ClusterSink,
        control: &MineControl,
        observer: &dyn SyncMineObserver,
    ) -> Result<EngineReport, CoreError> {
        let logged = log_transform(matrix, 2.0)
            .map_err(|e| invalid(format!("scaling engine needs positive values: {e}")))?;
        let run = pcluster_with_control(&logged, &self.params, control);
        let (n, stopped) = emit_all(run.clusters.into_iter().map(to_regcluster), sink, observer);
        Ok(EngineReport {
            n_emitted: n,
            truncated: run.truncated,
            stopped_by_sink: stopped,
            stats: None,
        })
    }
}

/// Cheng & Church δ-biclusters as an engine.
///
/// The masking range is chosen per run from the matrix's own value range,
/// as the original paper prescribes; inverted (anti-correlated) rows map to
/// the cluster's `n_members`.
#[derive(Debug, Clone)]
pub struct ChengChurchEngine {
    params: ChengChurchParams,
}

impl ChengChurchEngine {
    /// Creates the engine. The `mask_range` in `params` is ignored — it is
    /// recomputed from each run's matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] on out-of-domain parameters.
    pub fn new(params: ChengChurchParams) -> Result<Self, CoreError> {
        check_delta(params.delta, "delta")?;
        if !(params.alpha.is_finite() && params.alpha > 1.0) {
            return Err(invalid("alpha must be > 1"));
        }
        Ok(Self { params })
    }
}

impl BiclusterEngine for ChengChurchEngine {
    fn name(&self) -> &str {
        "cheng-church"
    }

    fn params_json(&self) -> String {
        format!(
            "{{\"delta\":{},\"alpha\":{},\"n_clusters\":{},\"seed\":{},\"mask_range\":\"auto\"}}",
            self.params.delta, self.params.alpha, self.params.n_clusters, self.params.seed
        )
    }

    fn run(
        &self,
        matrix: &ExpressionMatrix,
        sink: &dyn ClusterSink,
        control: &MineControl,
        observer: &dyn SyncMineObserver,
    ) -> Result<EngineReport, CoreError> {
        if control.is_cancelled() {
            return Ok(EngineReport::interrupted(0));
        }
        let (lo, hi) = matrix
            .flat_values()
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
                (l.min(v), h.max(v))
            });
        let mut params = self.params.clone();
        params.mask_range = if lo < hi { (lo, hi) } else { (lo, lo + 1.0) };
        let found = cheng_church(matrix, &params);
        let truncated = control.is_cancelled();
        let clusters = found.into_iter().map(|cc| {
            let mut p_members = Vec::new();
            let mut n_members = Vec::new();
            for (g, inv) in cc.bicluster.genes.into_iter().zip(cc.inverted) {
                if inv {
                    n_members.push(g);
                } else {
                    p_members.push(g);
                }
            }
            RegCluster {
                chain: cc.bicluster.conds,
                p_members,
                n_members,
            }
        });
        let (n, stopped) = emit_all(clusters, sink, observer);
        Ok(EngineReport {
            n_emitted: n,
            truncated,
            stopped_by_sink: stopped,
            stats: None,
        })
    }
}

/// FLOC δ-clusters as an engine.
#[derive(Debug, Clone)]
pub struct FlocEngine {
    params: FlocParams,
}

impl FlocEngine {
    /// Creates the engine.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] on out-of-domain parameters.
    pub fn new(params: FlocParams) -> Result<Self, CoreError> {
        check_delta(params.delta, "delta")?;
        if !(0.0..=1.0).contains(&params.seed_prob) {
            return Err(invalid("seed_prob must be a probability"));
        }
        Ok(Self { params })
    }
}

impl BiclusterEngine for FlocEngine {
    fn name(&self) -> &str {
        "floc"
    }

    fn params_json(&self) -> String {
        format!(
            "{{\"delta\":{},\"n_clusters\":{},\"seed_prob\":{},\"max_iterations\":{},\"min_genes\":{},\"min_conds\":{},\"seed\":{}}}",
            self.params.delta,
            self.params.n_clusters,
            self.params.seed_prob,
            self.params.max_iterations,
            self.params.min_genes,
            self.params.min_conds,
            self.params.seed
        )
    }

    fn run(
        &self,
        matrix: &ExpressionMatrix,
        sink: &dyn ClusterSink,
        control: &MineControl,
        observer: &dyn SyncMineObserver,
    ) -> Result<EngineReport, CoreError> {
        let run = floc_with_control(matrix, &self.params, control);
        let (n, stopped) = emit_all(run.clusters.into_iter().map(to_regcluster), sink, observer);
        Ok(EngineReport {
            n_emitted: n,
            truncated: run.truncated,
            stopped_by_sink: stopped,
            stats: None,
        })
    }
}

/// OPSM (order-preserving submatrices) as an engine. `min_conds` maps to
/// the model size `s` (the length of the shared column order).
#[derive(Debug, Clone)]
pub struct OpsmEngine {
    params: OpsmParams,
}

impl OpsmEngine {
    /// Creates the engine.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] on out-of-domain parameters.
    pub fn new(params: OpsmParams) -> Result<Self, CoreError> {
        if params.size < 2 {
            return Err(invalid("OPSM model size must be ≥ 2"));
        }
        if params.beam_width == 0 {
            return Err(invalid("OPSM beam width must be ≥ 1"));
        }
        Ok(Self { params })
    }
}

impl BiclusterEngine for OpsmEngine {
    fn name(&self) -> &str {
        "opsm"
    }

    fn params_json(&self) -> String {
        format!(
            "{{\"size\":{},\"beam_width\":{},\"min_genes\":{},\"max_models\":{}}}",
            self.params.size, self.params.beam_width, self.params.min_genes, self.params.max_models
        )
    }

    fn run(
        &self,
        matrix: &ExpressionMatrix,
        sink: &dyn ClusterSink,
        control: &MineControl,
        observer: &dyn SyncMineObserver,
    ) -> Result<EngineReport, CoreError> {
        if control.is_cancelled() {
            return Ok(EngineReport::interrupted(0));
        }
        let found = opsm(matrix, &self.params);
        let truncated = control.is_cancelled();
        let (n, stopped) = emit_all(found.into_iter().map(to_regcluster), sink, observer);
        Ok(EngineReport {
            n_emitted: n,
            truncated,
            stopped_by_sink: stopped,
            stats: None,
        })
    }
}

/// OP-Cluster (grouped tendency sequences) as an engine.
#[derive(Debug, Clone)]
pub struct OpClusterEngine {
    params: OpClusterParams,
}

impl OpClusterEngine {
    /// Creates the engine.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] on out-of-domain parameters.
    pub fn new(params: OpClusterParams) -> Result<Self, CoreError> {
        if !(params.group_multiplier.is_finite() && params.group_multiplier >= 0.0) {
            return Err(invalid("group multiplier must be finite and ≥ 0"));
        }
        if params.min_conds < 2 {
            return Err(invalid("sequences need at least 2 conditions"));
        }
        Ok(Self { params })
    }
}

impl BiclusterEngine for OpClusterEngine {
    fn name(&self) -> &str {
        "op-cluster"
    }

    fn params_json(&self) -> String {
        format!(
            "{{\"group_multiplier\":{},\"min_genes\":{},\"min_conds\":{},\"max_clusters\":{}}}",
            self.params.group_multiplier,
            self.params.min_genes,
            self.params.min_conds,
            self.params.max_clusters
        )
    }

    fn run(
        &self,
        matrix: &ExpressionMatrix,
        sink: &dyn ClusterSink,
        control: &MineControl,
        observer: &dyn SyncMineObserver,
    ) -> Result<EngineReport, CoreError> {
        if control.is_cancelled() {
            return Ok(EngineReport::interrupted(0));
        }
        let found = op_cluster(matrix, &self.params);
        let truncated = control.is_cancelled();
        let (n, stopped) = emit_all(found.into_iter().map(to_regcluster), sink, observer);
        Ok(EngineReport {
            n_emitted: n,
            truncated,
            stopped_by_sink: stopped,
            stats: None,
        })
    }
}

/// The TriCluster-style ratio-range miner (pure scaling) as an engine.
#[derive(Debug, Clone)]
pub struct MicroClusterEngine {
    params: MicroClusterParams,
}

impl MicroClusterEngine {
    /// Creates the engine.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] on out-of-domain parameters.
    pub fn new(params: MicroClusterParams) -> Result<Self, CoreError> {
        check_delta(params.epsilon, "epsilon")?;
        check_min_dims(params.min_genes, params.min_conds)?;
        Ok(Self { params })
    }
}

impl BiclusterEngine for MicroClusterEngine {
    fn name(&self) -> &str {
        "microcluster"
    }

    fn params_json(&self) -> String {
        format!(
            "{{\"epsilon\":{},\"min_genes\":{},\"min_conds\":{},\"max_clusters\":{},\"state_budget\":{}}}",
            self.params.epsilon,
            self.params.min_genes,
            self.params.min_conds,
            self.params.max_clusters,
            self.params.state_budget
        )
    }

    fn run(
        &self,
        matrix: &ExpressionMatrix,
        sink: &dyn ClusterSink,
        control: &MineControl,
        observer: &dyn SyncMineObserver,
    ) -> Result<EngineReport, CoreError> {
        if control.is_cancelled() {
            return Ok(EngineReport::interrupted(0));
        }
        let found = microcluster(matrix, &self.params);
        let truncated = control.is_cancelled();
        let (n, stopped) = emit_all(found.into_iter().map(to_regcluster), sink, observer);
        Ok(EngineReport {
            n_emitted: n,
            truncated,
            stopped_by_sink: stopped,
            stats: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcluster_core::{NoopObserver, VecSink};

    // All-positive so the log-space scaling engine accepts it too.
    fn shifted_matrix() -> ExpressionMatrix {
        let base = [1.0f64, 4.0, 2.0, 8.0, 5.0];
        let rows: Vec<Vec<f64>> = vec![
            base.to_vec(),
            base.iter().map(|v| v + 3.0).collect(),
            base.iter().map(|v| v + 1.0).collect(),
        ];
        ExpressionMatrix::from_rows(
            (0..3).map(|i| format!("g{i}")).collect(),
            (0..5).map(|i| format!("c{i}")).collect(),
            rows,
        )
        .unwrap()
    }

    #[test]
    fn pcluster_engine_streams_converted_clusters() {
        let m = shifted_matrix();
        let engine = PClusterEngine::new(PClusterParams {
            delta: 1e-9,
            min_genes: 3,
            min_conds: 5,
            ..Default::default()
        })
        .unwrap();
        let sink = VecSink::new();
        let report = engine
            .run(&m, &sink, &MineControl::new(), &NoopObserver)
            .unwrap();
        let clusters = sink.into_clusters();
        assert_eq!(report.n_emitted, 1);
        assert_eq!(clusters[0].p_members, vec![0, 1, 2]);
        assert_eq!(clusters[0].chain, vec![0, 1, 2, 3, 4]);
        assert!(clusters[0].n_members.is_empty());
    }

    #[test]
    fn every_adapter_honors_a_precancelled_control() {
        let m = shifted_matrix();
        let engines: Vec<Box<dyn BiclusterEngine>> = vec![
            Box::new(PClusterEngine::new(PClusterParams::default()).unwrap()),
            Box::new(ScalingEngine::new(PClusterParams::default()).unwrap()),
            Box::new(ChengChurchEngine::new(ChengChurchParams::default()).unwrap()),
            Box::new(FlocEngine::new(FlocParams::default()).unwrap()),
            Box::new(OpsmEngine::new(OpsmParams::default()).unwrap()),
            Box::new(OpClusterEngine::new(OpClusterParams::default()).unwrap()),
            Box::new(MicroClusterEngine::new(MicroClusterParams::default()).unwrap()),
        ];
        for engine in engines {
            let control = MineControl::new();
            control.cancel();
            let sink = VecSink::new();
            let report = engine
                .run(&m, &sink, &control, &NoopObserver)
                .unwrap_or_else(|e| panic!("{} failed: {e}", engine.name()));
            assert!(report.truncated, "{} ignored cancellation", engine.name());
            assert_eq!(report.n_emitted, 0, "{}", engine.name());
        }
    }

    #[test]
    fn cheng_church_inverted_rows_become_n_members() {
        // g2 = −g0 + 10: anti-correlated, additive after inversion.
        let base = [1.0f64, 4.0, 2.0, 8.0, 5.0];
        let rows: Vec<Vec<f64>> = vec![
            base.to_vec(),
            base.iter().map(|v| v + 3.0).collect(),
            base.iter().map(|v| 10.0 - v).collect(),
        ];
        let m = ExpressionMatrix::from_rows(
            (0..3).map(|i| format!("g{i}")).collect(),
            (0..5).map(|i| format!("c{i}")).collect(),
            rows,
        )
        .unwrap();
        let engine = ChengChurchEngine::new(ChengChurchParams {
            delta: 0.01,
            n_clusters: 1,
            ..Default::default()
        })
        .unwrap();
        let sink = VecSink::new();
        let report = engine
            .run(&m, &sink, &MineControl::new(), &NoopObserver)
            .unwrap();
        assert_eq!(report.n_emitted, 1);
        let clusters = sink.into_clusters();
        assert_eq!(
            clusters[0].n_members,
            vec![2],
            "inverted row maps to n-member"
        );
        assert_eq!(clusters[0].p_members, vec![0, 1]);
    }

    #[test]
    fn adapters_reject_out_of_domain_params() {
        assert!(PClusterEngine::new(PClusterParams {
            delta: -1.0,
            ..Default::default()
        })
        .is_err());
        assert!(PClusterEngine::new(PClusterParams {
            min_genes: 1,
            ..Default::default()
        })
        .is_err());
        assert!(ChengChurchEngine::new(ChengChurchParams {
            alpha: 1.0,
            ..Default::default()
        })
        .is_err());
        assert!(FlocEngine::new(FlocParams {
            seed_prob: 1.5,
            ..Default::default()
        })
        .is_err());
        assert!(OpsmEngine::new(OpsmParams {
            size: 1,
            ..Default::default()
        })
        .is_err());
        assert!(OpClusterEngine::new(OpClusterParams {
            min_conds: 1,
            ..Default::default()
        })
        .is_err());
        assert!(MicroClusterEngine::new(MicroClusterParams {
            epsilon: f64::NAN,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn scaling_engine_rejects_non_positive_matrices() {
        let m = ExpressionMatrix::from_flat_unlabeled(2, 2, vec![1.0, -1.0, 2.0, 3.0]).unwrap();
        let engine = ScalingEngine::new(PClusterParams::default()).unwrap();
        let sink = VecSink::new();
        let err = engine.run(&m, &sink, &MineControl::new(), &NoopObserver);
        assert!(err.is_err());
    }
}
