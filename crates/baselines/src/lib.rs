#![warn(missing_docs)]

//! Baseline biclustering algorithms the reg-cluster paper compares against.
//!
//! The paper positions reg-cluster against three families of prior work:
//!
//! * **Residue-based**: Cheng & Church's δ-biclusters
//!   ([`mod@cheng_church`]), which require member cells to fit an additive
//!   row+column model (mean-squared residue ≤ δ) — spatial coherence, no
//!   notion of regulation or negative scaling;
//! * **Pattern-based**: pCluster ([`mod@pcluster`]) finds *pure shifting*
//!   patterns (`d_i = d_j + s2`), and Tricluster finds *pure scaling*
//!   patterns; the 2D equivalent of the latter is pCluster run in log space
//!   ([`scaling`], Equation 1 of the paper);
//! * **Tendency-based**: OPSM / OP-Cluster ([`mod@opsm`]) find genes sharing a
//!   column *ordering* with no coherence guarantee at all.
//!
//! Each module documents where its implementation follows the original
//! publication exactly and where (for pCluster's candidate generation) a
//! bounded search is used; every reported bicluster is verified against the
//! model definition before being returned, so the baselines never
//! over-report.

mod bicluster;

pub mod cheng_church;
pub mod floc;
pub mod microcluster;
pub mod op_cluster;
pub mod opsm;
pub mod pcluster;
pub mod scaling;

pub use bicluster::{retain_maximal, BaselineRun, Bicluster};
pub use cheng_church::{cheng_church, CcBicluster, ChengChurchParams};
pub use floc::{floc, floc_with_control, FlocParams};
pub use microcluster::{microcluster, MicroClusterParams};
pub use op_cluster::{op_cluster, OpClusterParams};
pub use opsm::{opsm, OpsmParams};
pub use pcluster::{pcluster, pcluster_with_control, PClusterParams};
pub use scaling::{scaling_pcluster, ScalingError};
