//! Name-keyed engine construction: the dispatch table behind
//! `mine --engine <name>`.

use regcluster_baselines::{
    ChengChurchParams, FlocParams, MicroClusterParams, OpClusterParams, OpsmParams, PClusterParams,
};
use regcluster_core::{BiclusterEngine, CoreError, MiningParams};

use crate::adapters::{
    ChengChurchEngine, FlocEngine, MicroClusterEngine, OpClusterEngine, OpsmEngine, PClusterEngine,
    ScalingEngine,
};
use crate::boolean::{BooleanEngine, BooleanParams};
use crate::regcluster_engine::RegClusterEngine;

/// Every engine name the registry can build, in presentation order.
pub const ENGINE_NAMES: [&str; 9] = [
    "reg-cluster",
    "pcluster",
    "scaling",
    "cheng-church",
    "floc",
    "opsm",
    "op-cluster",
    "microcluster",
    "boolean",
];

/// The uniform knob set an engine is built from.
///
/// Each engine maps the fields it understands onto its native parameters
/// and ignores the rest: `gamma`/`epsilon` only drive `reg-cluster`,
/// `delta` is the tolerance knob of the baselines (pScore δ, residue δ,
/// ratio ε, similarity-group multiplier, or quantization step,
/// engine-dependent) and defaults to each engine's conventional value
/// when `None`. `min_conds` doubles as OPSM's model size.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSpec {
    /// Minimum genes per cluster.
    pub min_genes: usize,
    /// Minimum conditions (chain length / sequence length / model size).
    pub min_conds: usize,
    /// Reg-cluster regulation threshold γ (fraction of per-gene range).
    pub gamma: f64,
    /// Reg-cluster coherence threshold ε.
    pub epsilon: f64,
    /// Baseline tolerance (δ / ε / quantization step); engine-conventional
    /// default when `None`.
    pub delta: Option<f64>,
    /// Worker threads (reg-cluster only; the baselines are sequential).
    pub threads: usize,
    /// Deterministic seed for the stochastic engines (FLOC, Cheng–Church).
    pub seed: u64,
    /// Cap on reported clusters (reg-cluster only; post-filter).
    pub max_clusters: Option<usize>,
    /// Keep only maximal clusters (reg-cluster only; post-filter).
    pub maximal_only: bool,
}

impl Default for EngineSpec {
    fn default() -> Self {
        Self {
            min_genes: 5,
            min_conds: 3,
            gamma: 0.05,
            epsilon: 1.0,
            delta: None,
            threads: 1,
            seed: 0,
            max_clusters: None,
            maximal_only: false,
        }
    }
}

/// Builds the engine registered under `name`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] for an unknown name (the message
/// lists every known one) or when the spec is out of domain for the
/// selected engine.
pub fn build_engine(name: &str, spec: &EngineSpec) -> Result<Box<dyn BiclusterEngine>, CoreError> {
    let delta = |default: f64| spec.delta.unwrap_or(default);
    match name {
        "reg-cluster" => {
            let mut params =
                MiningParams::new(spec.min_genes, spec.min_conds, spec.gamma, spec.epsilon)?;
            if let Some(cap) = spec.max_clusters {
                params = params.with_max_clusters(cap);
            }
            if spec.maximal_only {
                params = params.with_maximal_only();
            }
            Ok(Box::new(RegClusterEngine::new(params, spec.threads)?))
        }
        "pcluster" => Ok(Box::new(PClusterEngine::new(PClusterParams {
            delta: delta(0.1),
            min_genes: spec.min_genes,
            min_conds: spec.min_conds,
            ..Default::default()
        })?)),
        "scaling" => Ok(Box::new(ScalingEngine::new(PClusterParams {
            delta: delta(0.05),
            min_genes: spec.min_genes,
            min_conds: spec.min_conds,
            ..Default::default()
        })?)),
        "cheng-church" => Ok(Box::new(ChengChurchEngine::new(ChengChurchParams {
            delta: delta(0.5),
            seed: spec.seed,
            ..Default::default()
        })?)),
        "floc" => Ok(Box::new(FlocEngine::new(FlocParams {
            delta: delta(0.5),
            min_genes: spec.min_genes,
            min_conds: spec.min_conds,
            seed: spec.seed,
            ..Default::default()
        })?)),
        "opsm" => Ok(Box::new(OpsmEngine::new(OpsmParams {
            size: spec.min_conds,
            min_genes: spec.min_genes,
            ..Default::default()
        })?)),
        "op-cluster" => Ok(Box::new(OpClusterEngine::new(OpClusterParams {
            group_multiplier: delta(1.0),
            min_genes: spec.min_genes,
            min_conds: spec.min_conds,
            ..Default::default()
        })?)),
        "microcluster" => Ok(Box::new(MicroClusterEngine::new(MicroClusterParams {
            epsilon: delta(0.01),
            min_genes: spec.min_genes,
            min_conds: spec.min_conds,
            ..Default::default()
        })?)),
        "boolean" => Ok(Box::new(BooleanEngine::new(BooleanParams {
            delta: delta(0.1),
            min_genes: spec.min_genes,
            min_conds: spec.min_conds,
            ..Default::default()
        })?)),
        other => Err(CoreError::InvalidParams(format!(
            "unknown engine {other:?}; known engines: {}",
            ENGINE_NAMES.join(", ")
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcluster_core::{MineControl, NoopObserver, VecSink};

    #[test]
    fn every_registered_name_builds_and_reports_its_own_name() {
        let spec = EngineSpec {
            min_genes: 2,
            min_conds: 2,
            ..EngineSpec::default()
        };
        for name in ENGINE_NAMES {
            let engine = build_engine(name, &spec)
                .unwrap_or_else(|e| panic!("engine {name} failed to build: {e}"));
            assert_eq!(engine.name(), name);
            // Every params_json is a parseable JSON object.
            let json = engine.params_json();
            serde_json::parse_value_str(&json)
                .unwrap_or_else(|e| panic!("{name} params_json invalid: {e} in {json}"));
        }
    }

    #[test]
    fn unknown_names_error_with_the_catalogue() {
        let msg = match build_engine("kmeans", &EngineSpec::default()) {
            Ok(_) => panic!("unknown engine must not build"),
            Err(e) => format!("{e}"),
        };
        assert!(msg.contains("kmeans") && msg.contains("reg-cluster") && msg.contains("boolean"));
    }

    #[test]
    fn opsm_model_size_comes_from_min_conds() {
        let spec = EngineSpec {
            min_genes: 2,
            min_conds: 1, // too small for an OPSM model
            ..EngineSpec::default()
        };
        assert!(build_engine("opsm", &spec).is_err());
    }

    #[test]
    fn built_engines_run_on_the_running_example() {
        let matrix = regcluster_datagen::running_example();
        let spec = EngineSpec {
            min_genes: 2,
            min_conds: 2,
            ..EngineSpec::default()
        };
        for name in ENGINE_NAMES {
            // The running example has negative values; the positive-only
            // engines must reject it cleanly rather than panic.
            let engine = build_engine(name, &spec).unwrap();
            let sink = VecSink::new();
            match engine.run(&matrix, &sink, &MineControl::new(), &NoopObserver) {
                Ok(report) => assert_eq!(report.n_emitted, sink.into_clusters().len(), "{name}"),
                Err(e) => assert!(name == "scaling", "{name} errored unexpectedly: {e}"),
            }
        }
    }
}
