//! Generation of strings matching a small regex subset.
//!
//! Supported syntax — covering the patterns used as strategies in this
//! workspace: literal characters, `\`-escapes, `[...]` character classes
//! with ranges (a trailing or leading `-` is literal), `(...)` groups,
//! alternation `|`, and the quantifiers `?`, `*`, `+`, `{m}`, `{m,n}`.
//! Unbounded quantifiers are capped at 8 repetitions.

use crate::test_runner::TestRng;
use rand::Rng;

const UNBOUNDED_CAP: u32 = 8;

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset, which is a bug in the
/// calling test, not an input-dependent condition.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let ast = parse_alternation(&chars, &mut pos);
    assert!(
        pos == chars.len(),
        "unsupported regex `{pattern}`: trailing `{}`",
        chars[pos]
    );
    let mut out = String::new();
    render(&ast, rng, &mut out);
    out
}

enum Node {
    /// Branches of an alternation.
    Alt(Vec<Node>),
    /// A sequence of repeated atoms.
    Seq(Vec<(Atom, u32, u32)>),
}

enum Atom {
    Literal(char),
    /// Inclusive character ranges; single characters are `(c, c)`.
    Class(Vec<(char, char)>),
    Group(Node),
    /// `.` — any printable ASCII character.
    Any,
}

fn parse_alternation(chars: &[char], pos: &mut usize) -> Node {
    let mut branches = vec![parse_sequence(chars, pos)];
    while chars.get(*pos) == Some(&'|') {
        *pos += 1;
        branches.push(parse_sequence(chars, pos));
    }
    if branches.len() == 1 {
        branches.pop().expect("one branch")
    } else {
        Node::Alt(branches)
    }
}

fn parse_sequence(chars: &[char], pos: &mut usize) -> Node {
    let mut atoms = Vec::new();
    while let Some(&c) = chars.get(*pos) {
        if c == '|' || c == ')' {
            break;
        }
        let atom = parse_atom(chars, pos);
        let (min, max) = parse_quantifier(chars, pos);
        atoms.push((atom, min, max));
    }
    Node::Seq(atoms)
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Atom {
    let c = chars[*pos];
    *pos += 1;
    match c {
        '\\' => {
            let esc = chars[*pos];
            *pos += 1;
            Atom::Literal(unescape(esc))
        }
        '[' => Atom::Class(parse_class(chars, pos)),
        '(' => {
            let inner = parse_alternation(chars, pos);
            assert!(
                chars.get(*pos) == Some(&')'),
                "unsupported regex: unclosed group"
            );
            *pos += 1;
            Atom::Group(inner)
        }
        '.' => Atom::Any,
        c => Atom::Literal(c),
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        c => c,
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Vec<(char, char)> {
    assert!(
        chars.get(*pos) != Some(&'^'),
        "unsupported regex: negated character class"
    );
    let mut ranges = Vec::new();
    while chars.get(*pos) != Some(&']') {
        let lo = match chars[*pos] {
            '\\' => {
                *pos += 1;
                unescape(chars[*pos])
            }
            c => c,
        };
        *pos += 1;
        // `a-z` is a range unless the `-` is the last class character.
        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1) != Some(&']') {
            *pos += 1;
            let hi = chars[*pos];
            *pos += 1;
            assert!(lo <= hi, "unsupported regex: inverted class range");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    *pos += 1; // ']'
    assert!(
        !ranges.is_empty(),
        "unsupported regex: empty character class"
    );
    ranges
}

fn parse_quantifier(chars: &[char], pos: &mut usize) -> (u32, u32) {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            (0, 1)
        }
        Some('*') => {
            *pos += 1;
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            *pos += 1;
            (1, UNBOUNDED_CAP)
        }
        Some('{') => {
            *pos += 1;
            let min = parse_number(chars, pos);
            let max = if chars.get(*pos) == Some(&',') {
                *pos += 1;
                parse_number(chars, pos)
            } else {
                min
            };
            assert!(
                chars.get(*pos) == Some(&'}'),
                "unsupported regex: unclosed counted repetition"
            );
            *pos += 1;
            (min, max)
        }
        _ => (1, 1),
    }
}

fn parse_number(chars: &[char], pos: &mut usize) -> u32 {
    let start = *pos;
    while chars.get(*pos).is_some_and(char::is_ascii_digit) {
        *pos += 1;
    }
    chars[start..*pos]
        .iter()
        .collect::<String>()
        .parse()
        .expect("unsupported regex: malformed repetition count")
}

fn render(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Alt(branches) => {
            let i = rng.0.gen_range(0..branches.len());
            render(&branches[i], rng, out);
        }
        Node::Seq(atoms) => {
            for (atom, min, max) in atoms {
                let n = rng.0.gen_range(*min..=*max);
                for _ in 0..n {
                    render_atom(atom, rng, out);
                }
            }
        }
    }
}

fn render_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Literal(c) => out.push(*c),
        Atom::Class(ranges) => {
            let i = rng.0.gen_range(0..ranges.len());
            let (lo, hi) = ranges[i];
            let code = rng.0.gen_range(lo as u32..=hi as u32);
            out.push(char::from_u32(code).expect("class range stays in valid chars"));
        }
        Atom::Group(inner) => render(inner, rng, out),
        Atom::Any => out.push(char::from_u32(rng.0.gen_range(0x20u32..0x7f)).expect("ascii")),
    }
}
