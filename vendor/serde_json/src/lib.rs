//! Offline stub of `serde_json`: a hand-rolled JSON emitter and
//! recursive-descent parser over the serde stub's [`Value`] tree.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A JSON serialization or parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the types this workspace serializes; the `Result` mirrors
/// the upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the types this workspace serializes; the `Result` mirrors
/// the upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a tree that does not match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    Ok(T::from_json_value(&value)?)
}

/// Parses JSON text into a raw [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing non-whitespace input.
pub fn parse_value_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{}` prints 1.0 as "1"; keep a fractional marker so the
                // number reparses as Float rather than Int.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, x, d| {
                write_value(o, x, indent, d)
            })
        }
        Value::Object(pairs) => {
            write_seq(
                out,
                pairs.iter(),
                indent,
                depth,
                ('{', '}'),
                |o, (k, x), d| {
                    write_string(o, k);
                    o.push(':');
                    if indent.is_some() {
                        o.push(' ');
                    }
                    write_value(o, x, indent, d);
                },
            );
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Result<u8, Error> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".to_string()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(Error(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                c => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek()?, b'"' | b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".to_string()))?,
            );
            if self.peek()? == b'"' {
                self.pos += 1;
                return Ok(out);
            }
            self.pos += 1; // backslash
            let esc = self.peek()?;
            self.pos += 1;
            match esc {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'b' => out.push('\u{8}'),
                b'f' => out.push('\u{c}'),
                b'n' => out.push('\n'),
                b'r' => out.push('\r'),
                b't' => out.push('\t'),
                b'u' => {
                    let hex = self
                        .bytes
                        .get(self.pos..self.pos + 4)
                        .and_then(|h| std::str::from_utf8(h).ok())
                        .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                    let code = u32::from_str_radix(hex, 16)
                        .map_err(|_| Error(format!("invalid \\u escape `{hex}`")))?;
                    self.pos += 4;
                    // Surrogate pairs are not produced by this stub's emitter;
                    // map unpaired surrogates to the replacement character.
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                c => return Err(Error(format!("invalid escape `\\{}`", c as char))),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek()? == b'-' {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("number span is ASCII");
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a \"b\"\n".into())),
            ("n".into(), Value::Int(-42)),
            ("x".into(), Value::Float(1.0)),
            (
                "items".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0);
            s
        };
        assert_eq!(parse_value_str(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_value(&mut s, &v, Some(2), 0);
            s
        };
        assert_eq!(parse_value_str(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"name\""));
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<Option<usize>> = vec![Some(1), None, Some(3)];
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Option<usize>>>(&text).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value_str("1 2").is_err());
        assert!(from_str::<usize>("[1").is_err());
    }
}
