//! Fuzzing the matrix loader: no input — binary garbage, token soup,
//! NaN/Inf cells, ragged rows — may ever panic it. Malformed matrices
//! must come back as typed [`MatrixError`]s, well-formed ones must
//! round-trip. Mirrors the argument-parser fuzz in
//! `crates/cli/tests/parser_fuzz.rs`.

use proptest::prelude::*;

use regcluster_matrix::io::{read_matrix, read_ragged};
use regcluster_matrix::MatrixError;

/// One data-cell token: valid numbers, the documented missing-value
/// markers, non-finite spellings, and outright garbage (including
/// delimiter characters, so raggedness emerges naturally).
fn cell_token() -> impl Strategy<Value = String> {
    prop_oneof![
        "-?[0-9]{1,5}(\\.[0-9]{0,3})?",
        Just("NA".to_string()),
        Just("NaN".to_string()),
        Just("?".to_string()),
        Just(String::new()),
        Just("inf".to_string()),
        Just("-inf".to_string()),
        Just("1e309".to_string()), // overflows f64 to +inf
        "[a-zA-Z%#,;. -]{0,6}",
    ]
}

/// Builds a tab-delimited document from a header width and token rows.
fn render(n_conds: usize, rows: &[Vec<String>]) -> String {
    let mut text = "GENE".to_string();
    for c in 0..n_conds {
        text.push_str(&format!("\tc{c}"));
    }
    text.push('\n');
    for (g, row) in rows.iter().enumerate() {
        text.push_str(&format!("g{g}"));
        for tok in row {
            text.push('\t');
            text.push_str(tok);
        }
        text.push('\n');
    }
    text
}

/// A rectangular matrix of in-range finite values, rendered to text.
fn well_formed() -> impl Strategy<Value = (usize, Vec<Vec<f64>>)> {
    (1usize..6, 1usize..6).prop_flat_map(|(n_conds, n_genes)| {
        let rows =
            prop::collection::vec(prop::collection::vec(-1000.0f64..1000.0, n_conds), n_genes);
        (Just(n_conds), rows)
    })
}

fn render_values(n_conds: usize, rows: &[Vec<f64>]) -> String {
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|v| format!("{v}")).collect())
        .collect();
    render(n_conds, &rendered)
}

proptest! {
    /// Arbitrary bytes — not even UTF-8 — must parse or error, never panic.
    #[test]
    fn loader_never_panics_on_binary_garbage(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = read_ragged(bytes.as_slice());
        let _ = read_matrix(bytes.as_slice());
    }

    /// Token-soup grids (holes, infinities, garbage, ragged widths) must
    /// parse or error, never panic — and whenever the grid is rectangular
    /// with parseable finite cells, parsing must succeed.
    #[test]
    fn loader_never_panics_on_token_grids(
        n_conds in 1usize..5,
        rows in prop::collection::vec(prop::collection::vec(cell_token(), 0..6), 0..5),
    ) {
        let text = render(n_conds, &rows);
        let _ = read_matrix(text.as_bytes());
        if let Ok(r) = read_ragged(text.as_bytes()) {
            prop_assert_eq!(r.cells.len(), r.genes.len() * r.conditions.len());
        }
    }

    /// Well-formed matrices round-trip exactly.
    #[test]
    fn well_formed_matrices_parse_and_roundtrip((n_conds, rows) in well_formed()) {
        let m = read_matrix(render_values(n_conds, &rows).as_bytes()).unwrap();
        prop_assert_eq!(m.n_genes(), rows.len());
        prop_assert_eq!(m.n_conditions(), n_conds);
        for (g, row) in rows.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                prop_assert_eq!(m.value(g, c), *v);
            }
        }
    }

    /// An infinity anywhere is a typed `NonFinite` naming the exact cell.
    /// (`NaN` spellings are missing-value markers by the format spec, so
    /// the non-finite rejection is specifically about infinities.)
    #[test]
    fn infinities_are_rejected_with_the_cell_position(
        (n_conds, rows) in well_formed(),
        pick in 0usize..10_000,
        spelling in prop_oneof![Just("inf"), Just("-inf"), Just("Infinity"), Just("1e309")],
    ) {
        let flat = pick % (rows.len() * n_conds);
        let (bad_row, bad_col) = (flat / n_conds, flat % n_conds);
        let mut rendered: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(|v| format!("{v}")).collect())
            .collect();
        rendered[bad_row][bad_col] = spelling.to_string();
        match read_matrix(render(n_conds, &rendered).as_bytes()) {
            Err(MatrixError::NonFinite { gene, cond }) => {
                prop_assert_eq!((gene, cond), (bad_row, bad_col));
            }
            other => prop_assert!(false, "expected NonFinite, got {:?}", other.map(|_| ())),
        }
    }

    /// Missing-value markers become holes that `read_matrix` refuses and
    /// `read_ragged` counts exactly.
    #[test]
    fn holes_are_counted_and_refused(
        (n_conds, rows) in well_formed(),
        pick in 0usize..10_000,
        marker in prop_oneof![Just("NA"), Just("nan"), Just("?"), Just("")],
    ) {
        let flat = pick % (rows.len() * n_conds);
        let mut rendered: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(|v| format!("{v}")).collect())
            .collect();
        rendered[flat / n_conds][flat % n_conds] = marker.to_string();
        let text = render(n_conds, &rendered);
        prop_assert!(read_matrix(text.as_bytes()).is_err());
        let r = read_ragged(text.as_bytes()).unwrap();
        prop_assert_eq!(r.n_missing(), 1);
    }

    /// A row of the wrong width is a typed `RaggedRow` naming the row,
    /// whether a cell is missing or extra.
    #[test]
    fn ragged_rows_are_rejected_with_the_row_index(
        (n_conds, rows) in well_formed(),
        pick in 0usize..10_000,
        extend in any::<bool>(),
    ) {
        let bad_row = pick % rows.len();
        let mut rendered: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(|v| format!("{v}")).collect())
            .collect();
        if extend {
            rendered[bad_row].push("1".to_string());
        } else {
            rendered[bad_row].pop();
        }
        match read_matrix(render(n_conds, &rendered).as_bytes()) {
            Err(MatrixError::RaggedRow { row, expected, found }) => {
                prop_assert_eq!(row, bad_row);
                prop_assert_eq!(expected, n_conds);
                prop_assert_eq!(found, if extend { n_conds + 1 } else { n_conds - 1 });
            }
            other => prop_assert!(false, "expected RaggedRow, got {:?}", other.map(|_| ())),
        }
    }
}
