//! Generational store lineages: a directory of immutable `gen-<N>.rcs`
//! files plus an atomically-published `CURRENT` pointer, so a serving
//! process can hot-swap to a freshly mined generation while in-flight
//! readers drain off the previous one.
//!
//! # Publish protocol
//!
//! A new generation lands in three steps, each crash-safe on its own:
//!
//! 1. the store file is written as `gen-<N>.rcs` through the ordinary
//!    [`StoreWriter`](crate::StoreWriter) tmp + fsync + rename discipline
//!    (so the file is complete or absent, never torn);
//! 2. `CURRENT` is replaced atomically — the new pointer is written to
//!    `CURRENT.tmp`, fsynced, renamed over `CURRENT`, and the directory
//!    is fsynced (failpoint site `store::current_publish` sits before the
//!    rename, the commit point);
//! 3. stale files are swept: leftover `*.tmp` scratch, **orphaned**
//!    generations above the pointer (a crash between steps 1 and 2 leaves
//!    one behind — the torn-publish case of
//!    `crates/store/tests/torn_write.rs`), and generations older than the
//!    predecessor (readers may still be draining generation `N-1`, so it
//!    alone is kept alongside `N`).
//!
//! A crash anywhere leaves `CURRENT` pointing at a complete, readable
//! store; the next successful publish cleans up whatever the crash left.
//!
//! # Concurrency contract
//!
//! One publisher at a time. Readers only ever *read* `CURRENT` and open
//! the file it names — [`Generations::sweep`] must not run on the read
//! side, where a half-written next generation is indistinguishable from
//! an orphan.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::StoreError;
use crate::writer::sync_parent_dir;

/// Name of the pointer file inside a generations directory.
pub const CURRENT_FILE: &str = "CURRENT";

/// A generations directory handle.
///
/// See the module-level docs above for the layout and publish protocol.
#[derive(Debug, Clone)]
pub struct Generations {
    dir: PathBuf,
}

/// Parses `gen-<N>.rcs` into `N`.
fn parse_generation_name(name: &str) -> Option<u64> {
    name.strip_prefix("gen-")?
        .strip_suffix(".rcs")?
        .parse()
        .ok()
}

impl Generations {
    /// Opens (creating if needed) the generations directory at `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(Generations { dir })
    }

    /// The directory this lineage lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where generation `generation`'s store file lives
    /// (`<dir>/gen-<N>.rcs`) — the path to hand
    /// [`StoreWriter::create`](crate::StoreWriter::create) before
    /// [`publish`](Generations::publish).
    pub fn path_for(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation}.rcs"))
    }

    /// The published generation number, or `None` for a fresh lineage
    /// (no `CURRENT` yet).
    ///
    /// # Errors
    ///
    /// [`StoreError::Format`] when `CURRENT` holds something other than a
    /// decimal generation number, [`StoreError::Io`] when it cannot be
    /// read.
    pub fn current(&self) -> Result<Option<u64>, StoreError> {
        let raw = match fs::read_to_string(self.dir.join(CURRENT_FILE)) {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        raw.trim().parse().map(Some).map_err(|_| {
            StoreError::Format(format!(
                "CURRENT pointer holds {:?}, not a generation number",
                raw.trim()
            ))
        })
    }

    /// Path of the published generation's store file, or `None` for a
    /// fresh lineage.
    ///
    /// # Errors
    ///
    /// As [`current`](Generations::current).
    pub fn current_path(&self) -> Result<Option<PathBuf>, StoreError> {
        Ok(self.current()?.map(|g| self.path_for(g)))
    }

    /// The generation number a new publish should use: one past the
    /// published generation, or 0 for a fresh lineage. Orphaned files
    /// above the pointer are ignored (and will be overwritten or swept).
    ///
    /// # Errors
    ///
    /// As [`current`](Generations::current).
    pub fn next(&self) -> Result<u64, StoreError> {
        Ok(match self.current()? {
            Some(g) => g + 1,
            None => 0,
        })
    }

    /// Atomically points `CURRENT` at `generation`, then sweeps stale
    /// files (see the module-level publish protocol). The generation's
    /// store file
    /// must already exist — publish is the last step, after the writer's
    /// own sealing rename.
    ///
    /// # Errors
    ///
    /// [`StoreError::Format`] when `gen-<N>.rcs` is missing,
    /// [`StoreError::Io`] when the pointer cannot be written durably. On
    /// error `CURRENT` still holds its previous value.
    pub fn publish(&self, generation: u64) -> Result<(), StoreError> {
        let store = self.path_for(generation);
        if !store.is_file() {
            return Err(StoreError::Format(format!(
                "cannot publish generation {generation}: {} does not exist",
                store.display()
            )));
        }
        let current = self.dir.join(CURRENT_FILE);
        let tmp = self.dir.join(format!("{CURRENT_FILE}.tmp"));
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        writeln!(f, "{generation}")?;
        f.sync_all()?;
        drop(f);
        // The commit point: before the rename the old pointer is intact,
        // after it the new one is.
        if let Err(e) = regcluster_failpoint::io("store::current_publish") {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        fs::rename(&tmp, &current)?;
        sync_parent_dir(&current)?;
        self.sweep()?;
        Ok(())
    }

    /// Removes stale files a crash may have left behind: `*.tmp` scratch,
    /// orphaned generations above the `CURRENT` pointer (written but
    /// never published), and generations older than the predecessor.
    /// Returns the removed paths. Removal is best-effort — a file that
    /// vanishes or resists deletion is skipped, not an error.
    ///
    /// **Publish-side only**: on the read side a concurrent publisher's
    /// half-written next generation would be swept as an orphan.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be listed, or as
    /// [`current`](Generations::current).
    pub fn sweep(&self) -> Result<Vec<PathBuf>, StoreError> {
        let current = self.current()?;
        let mut removed = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let stale = if name.ends_with(".tmp") {
                true
            } else if let Some(g) = parse_generation_name(name) {
                match current {
                    // Orphan above the pointer, or older than the
                    // still-draining predecessor.
                    Some(c) => g > c || g + 1 < c,
                    // No pointer at all: every generation file is the
                    // debris of a publish that never landed.
                    None => true,
                }
            } else {
                false
            };
            if stale && fs::remove_file(&path).is_ok() {
                removed.push(path);
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "regcluster-generations-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fake_store(gens: &Generations, g: u64) {
        // publish() only checks existence; sweep never opens files.
        fs::write(gens.path_for(g), b"stub").unwrap();
    }

    #[test]
    fn fresh_lineage_starts_at_zero() {
        let dir = tmp_dir("fresh");
        let gens = Generations::open(&dir).unwrap();
        assert_eq!(gens.current().unwrap(), None);
        assert_eq!(gens.current_path().unwrap(), None);
        assert_eq!(gens.next().unwrap(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn publish_advances_current_and_prunes() {
        let dir = tmp_dir("advance");
        let gens = Generations::open(&dir).unwrap();
        for g in 0..4 {
            fake_store(&gens, g);
            gens.publish(g).unwrap();
            assert_eq!(gens.current().unwrap(), Some(g));
            assert_eq!(gens.next().unwrap(), g + 1);
        }
        // Generations 3 (current) and 2 (predecessor) survive the sweep.
        assert!(gens.path_for(3).is_file());
        assert!(gens.path_for(2).is_file());
        assert!(!gens.path_for(1).exists());
        assert!(!gens.path_for(0).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn publish_refuses_a_missing_generation_file() {
        let dir = tmp_dir("missing");
        let gens = Generations::open(&dir).unwrap();
        let err = gens.publish(0).unwrap_err();
        assert!(matches!(err, StoreError::Format(_)));
        assert_eq!(gens.current().unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_clears_orphans_and_scratch() {
        let dir = tmp_dir("orphans");
        let gens = Generations::open(&dir).unwrap();
        fake_store(&gens, 0);
        gens.publish(0).unwrap();
        // A crash after writing gen-1 but before publishing it, plus
        // stale scratch files from both writer and pointer.
        fake_store(&gens, 1);
        fs::write(dir.join("gen-1.rcs.tmp"), b"half").unwrap();
        fs::write(dir.join("CURRENT.tmp"), b"1").unwrap();
        let removed = gens.sweep().unwrap();
        assert_eq!(removed.len(), 3, "removed: {removed:?}");
        assert!(gens.path_for(0).is_file());
        assert!(!gens.path_for(1).exists());
        assert_eq!(gens.current().unwrap(), Some(0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_current_is_a_format_error() {
        let dir = tmp_dir("garbage");
        let gens = Generations::open(&dir).unwrap();
        fs::write(dir.join(CURRENT_FILE), b"not-a-number").unwrap();
        assert!(matches!(gens.current(), Err(StoreError::Format(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_names_parse_strictly() {
        assert_eq!(parse_generation_name("gen-0.rcs"), Some(0));
        assert_eq!(parse_generation_name("gen-17.rcs"), Some(17));
        assert_eq!(parse_generation_name("gen-.rcs"), None);
        assert_eq!(parse_generation_name("gen-x.rcs"), None);
        assert_eq!(parse_generation_name("other.rcs"), None);
        assert_eq!(parse_generation_name("gen-1.rcs.tmp"), None);
    }
}
