//! Noise-robustness experiment — an extension beyond the paper's
//! evaluation, exercising the knob its model introduces.
//!
//! The paper's synthetic clusters are perfect (`ε = 0`); real microarray
//! measurements are not, which is why the coherence threshold ε exists.
//! This experiment plants shifting-and-scaling clusters, blurs the planted
//! cells with Gaussian noise of increasing σ (same structure across all
//! noise levels — the generator uses an independent noise stream), and
//! measures recovery for several ε settings. Expected shape: at ε ≈ 0 the
//! slightest noise destroys recovery; moderate ε tolerates moderate noise;
//! very large ε keeps recovery but costs relevance (looser windows admit
//! background genes). Results: `results/noise_robustness.json`.

use regcluster_bench::plot::{line_chart, Series};
use regcluster_bench::{quick_mode, time, write_json, write_text};
use regcluster_core::{mine, MiningParams};
use regcluster_datagen::{generate, PatternKind, SyntheticConfig};
use regcluster_eval::{recovery, relevance, ClusterShape};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    noise_sigma: f64,
    epsilon: f64,
    recovery: f64,
    relevance: f64,
    n_found: usize,
    runtime_s: f64,
}

fn main() {
    let sigmas: Vec<f64> = if quick_mode() {
        vec![0.0, 0.1, 0.3]
    } else {
        vec![0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8]
    };
    let epsilons = [0.001, 0.05, 0.2, 1.0];

    let base_cfg = SyntheticConfig {
        n_genes: 600,
        n_conds: 17,
        n_clusters: 4,
        avg_cluster_dims: 6,
        cluster_gene_frac: 0.03,
        neg_fraction: 0.25,
        plant_gamma: 0.12,
        pattern: PatternKind::ShiftScale,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 7001,
    };

    println!("noise robustness: recovery/relevance vs noise σ and coherence ε");
    println!(
        "{:>8} {:>8} {:>9} {:>10} {:>7} {:>9}",
        "σ", "ε", "recovery", "relevance", "found", "time(s)"
    );
    let mut points = Vec::new();
    for &sigma in &sigmas {
        let cfg = SyntheticConfig {
            noise_sigma: sigma,
            ..base_cfg.clone()
        };
        let data = generate(&cfg).expect("feasible");
        let truth: Vec<ClusterShape> = data.planted.iter().map(ClusterShape::from).collect();
        let min_g = data.planted.iter().map(|p| p.n_genes()).min().unwrap();
        let min_c = data.planted.iter().map(|p| p.n_conditions()).min().unwrap();
        for &eps in &epsilons {
            // Mine with γ below the planting margin (noise can erode the
            // margin, which is part of what is being measured).
            let params = MiningParams::new(min_g, min_c, 0.08, eps)
                .expect("valid")
                .with_maximal_only();
            let (found, secs) = time(|| mine(&data.matrix, &params).expect("mining succeeds"));
            let shapes: Vec<ClusterShape> = found.iter().map(ClusterShape::from).collect();
            let rec = recovery(&truth, &shapes);
            let rel = relevance(&shapes, &truth);
            println!(
                "{sigma:>8.2} {eps:>8.3} {rec:>9.3} {rel:>10.3} {:>7} {secs:>9.3}",
                found.len()
            );
            points.push(Point {
                noise_sigma: sigma,
                epsilon: eps,
                recovery: rec,
                relevance: rel,
                n_found: found.len(),
                runtime_s: secs,
            });
        }
    }
    // Recovery curves per ε, one line each.
    let series: Vec<Series> = epsilons
        .iter()
        .map(|&eps| {
            Series::solid(
                format!("ε = {eps}"),
                points
                    .iter()
                    .filter(|p| p.epsilon == eps)
                    .map(|p| (p.noise_sigma, p.recovery))
                    .collect(),
            )
        })
        .collect();
    write_text(
        "noise_robustness.svg",
        &line_chart("Recovery vs planted noise", "noise σ", "recovery", &series),
    );
    write_json("noise_robustness.json", &points);
}
