//! Integration tests of the parallel mining engine: determinism across
//! thread counts, observer statistics, sinks, cancellation, and worker-panic
//! capture.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use proptest::prelude::*;

use regcluster_core::{
    mine, mine_engine, mine_engine_with, mine_to_sink, CappedSink, CoreError, EngineConfig,
    MineControl, MiningParams, MiningStats, NoopObserver, RegCluster, SplitStrategy, StreamingSink,
    SyncMineObserver, VecSink,
};
use regcluster_matrix::ExpressionMatrix;

/// A small random matrix plus mining parameters (mirrors the strategy in
/// `properties.rs`).
fn matrix_strategy() -> impl Strategy<Value = (ExpressionMatrix, MiningParams)> {
    (2usize..=8, 3usize..=8).prop_flat_map(|(n_genes, n_conds)| {
        let values = prop::collection::vec(-20.0f64..20.0, n_genes * n_conds);
        let gamma = 0.0f64..0.5;
        let eps = 0.0f64..1.0;
        (Just(n_genes), Just(n_conds), values, gamma, eps).prop_map(
            |(n_genes, n_conds, values, gamma, eps)| {
                let m = ExpressionMatrix::from_flat_unlabeled(n_genes, n_conds, values)
                    .expect("generated values are finite");
                let params = MiningParams::new(2, 2, gamma, eps).expect("valid params");
                (m, params)
            },
        )
    })
}

/// The Table 1 running example of the paper.
fn running_example() -> (ExpressionMatrix, MiningParams) {
    let m = ExpressionMatrix::from_rows(
        vec!["g1".into(), "g2".into(), "g3".into()],
        (1..=10).map(|i| format!("c{i}")).collect(),
        vec![
            vec![10.0, -14.5, 15.0, 10.5, 0.0, 14.5, -15.0, 0.0, -5.0, -5.0],
            vec![20.0, 15.0, 15.0, 43.5, 30.0, 44.0, 45.0, 43.0, 35.0, 20.0],
            vec![6.0, -3.8, 8.0, 6.2, 2.0, 7.8, -4.0, 2.0, 0.0, 0.0],
        ],
    )
    .unwrap();
    let params = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
    (m, params)
}

proptest! {
    /// Engine output is bit-identical to the sequential miner for every
    /// thread count, with and without a cluster cap, under both split
    /// strategies.
    #[test]
    fn engine_matches_sequential_across_thread_counts(
        (m, params) in matrix_strategy(),
        cap in prop_oneof![Just(None), (1usize..4).prop_map(Some)],
    ) {
        let params = match cap {
            Some(c) => params.clone().with_max_clusters(c),
            None => params,
        };
        let seq = mine(&m, &params).expect("sequential mining succeeds");
        for threads in [1usize, 2, 4, 8] {
            let config = EngineConfig::new(threads);
            let report = mine_engine(&m, &params, &config).expect("engine succeeds");
            prop_assert!(!report.truncated);
            prop_assert_eq!(&report.clusters, &seq, "threads = {}", threads);

            let static_cfg = config.clone().with_split(SplitStrategy::StaticRoots);
            let report = mine_engine(&m, &params, &static_cfg).expect("engine succeeds");
            prop_assert_eq!(&report.clusters, &seq, "static roots, threads = {}", threads);
        }
    }

    /// The merged per-worker statistics equal a sequential observer's totals
    /// at every thread count: first-arrival duplicate pruning keeps the event
    /// multiset invariant (DESIGN.md §7.6).
    #[test]
    fn engine_stats_match_sequential((m, params) in matrix_strategy()) {
        let mut seq_stats = MiningStats::default();
        regcluster_core::mine_with_observer(&m, &params, &mut seq_stats)
            .expect("sequential mining succeeds");
        for threads in [1usize, 2, 4, 8] {
            let report = mine_engine(&m, &params, &EngineConfig::new(threads))
                .expect("engine succeeds");
            prop_assert_eq!(&report.stats, &seq_stats, "threads = {}", threads);
        }
    }

    /// Streaming to a [`VecSink`] delivers exactly the pre-finalize cluster
    /// set: the finalized engine output is a subset, and every streamed
    /// cluster is distinct.
    #[test]
    fn sink_streams_the_full_cluster_set((m, params) in matrix_strategy()) {
        let sink = VecSink::new();
        let stream = mine_to_sink(
            &m,
            &params,
            &EngineConfig::new(4),
            &MineControl::new(),
            &NoopObserver,
            &sink,
        )
        .expect("streaming succeeds");
        prop_assert!(!stream.truncated);
        prop_assert!(!stream.stopped_by_sink);
        let mut streamed = sink.into_clusters();
        streamed.sort_by(|a, b| {
            (&a.chain, &a.p_members, &a.n_members).cmp(&(&b.chain, &b.p_members, &b.n_members))
        });
        let before = streamed.len();
        streamed.dedup();
        prop_assert_eq!(before, streamed.len(), "sink received duplicates");

        let finalized = mine(&m, &params).expect("sequential mining succeeds");
        for c in &finalized {
            prop_assert!(streamed.contains(c), "finalized cluster missing from stream");
        }
    }
}

#[test]
fn engine_finds_running_example_on_every_thread_count() {
    let (m, params) = running_example();
    for threads in [1usize, 2, 4, 8] {
        let report = mine_engine(&m, &params, &EngineConfig::new(threads)).unwrap();
        assert_eq!(report.clusters.len(), 1, "threads = {threads}");
        let c = &report.clusters[0];
        assert_eq!(c.chain, vec![6, 8, 4, 0, 2]);
        assert_eq!(c.p_members, vec![0, 2]);
        assert_eq!(c.n_members, vec![1]);
    }
}

/// An observer that panics as soon as any cluster is emitted.
struct PanickingObserver;

impl SyncMineObserver for PanickingObserver {
    fn cluster_emitted(&self, _cluster: &RegCluster) {
        panic!("observer exploded");
    }
}

#[test]
fn panicking_observer_surfaces_as_worker_panic_error() {
    let (m, params) = running_example();
    for threads in [1usize, 4] {
        let err = mine_engine_with(
            &m,
            &params,
            &EngineConfig::new(threads),
            &MineControl::new(),
            &PanickingObserver,
        )
        .expect_err("worker panic must surface as an error");
        match err {
            CoreError::WorkerPanic(msg) => {
                assert!(msg.contains("observer exploded"), "{msg}")
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }
}

#[test]
fn zero_deadline_reports_truncation_without_panicking() {
    let (m, params) = running_example();
    let control = MineControl::with_deadline(Duration::ZERO);
    let report = mine_engine_with(&m, &params, &EngineConfig::new(4), &control, &NoopObserver)
        .expect("an expired deadline is not an engine error");
    assert!(report.truncated);
    assert!(report.clusters.is_empty());
    match report.into_result() {
        Err(CoreError::Cancelled) => {}
        other => panic!("expected Err(Cancelled), got {other:?}"),
    }
}

#[test]
fn cancelled_control_stops_the_run() {
    let (m, params) = running_example();
    let control = MineControl::new();
    control.cancel();
    let report =
        mine_engine_with(&m, &params, &EngineConfig::new(2), &control, &NoopObserver).unwrap();
    assert!(report.truncated);
    assert!(report.clusters.is_empty());
}

#[test]
fn capped_sink_stops_mining_cooperatively() {
    let (m, params) = running_example();
    // Cap below the (single) emitted cluster count: one accepted cluster and
    // the engine must stop by sink, not by exhaustion.
    let sink = CappedSink::new(1);
    let stream = mine_to_sink(
        &m,
        &params,
        &EngineConfig::new(2),
        &MineControl::new(),
        &NoopObserver,
        &sink,
    )
    .unwrap();
    assert!(stream.stopped_by_sink);
    assert_eq!(sink.into_clusters().len(), 1);
}

#[test]
fn streaming_sink_delivers_clusters_through_a_channel() {
    let (m, params) = running_example();
    let (sink, rx) = StreamingSink::channel(16);
    let stream = std::thread::scope(|scope| {
        let consumer = scope.spawn(move || rx.into_iter().collect::<Vec<_>>());
        let stream = mine_to_sink(
            &m,
            &params,
            &EngineConfig::new(2),
            &MineControl::new(),
            &NoopObserver,
            &sink,
        )
        .unwrap();
        drop(sink);
        let received = consumer.join().unwrap();
        assert_eq!(received.len(), 1);
        assert_eq!(received[0].chain, vec![6, 8, 4, 0, 2]);
        stream
    });
    assert!(!stream.truncated);
    assert!(!stream.stopped_by_sink);
}

#[test]
fn cancellation_interrupts_a_send_blocked_on_a_stalled_receiver() {
    let (m, params) = running_example();
    let control = MineControl::new();
    // Capacity 0 and a receiver that never drains: the emitting worker
    // blocks inside the sink until the cancellation poll notices the stop.
    // Without `with_control`, this test would hang forever.
    let (sink, rx) = StreamingSink::channel(0);
    let sink = sink.with_control(control.clone());
    let stream = std::thread::scope(|scope| {
        let canceller = control.clone();
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            canceller.cancel();
        });
        mine_to_sink(
            &m,
            &params,
            &EngineConfig::new(2),
            &control,
            &NoopObserver,
            &sink,
        )
        .unwrap()
    });
    drop(rx);
    assert!(
        stream.truncated,
        "a blocked send must surface as truncation"
    );
    assert!(!stream.stopped_by_sink, "cancellation is not a sink stop");
}

/// A stats observer shared by all workers, counting through atomics — the
/// user-facing `SyncMineObserver` path, as opposed to the engine's internal
/// per-worker accumulators.
#[derive(Default)]
struct AtomicCounts {
    nodes: AtomicUsize,
    emitted: AtomicUsize,
    pruned: AtomicUsize,
}

impl SyncMineObserver for AtomicCounts {
    fn node_entered(&self, _chain: &[usize], _n_p: usize, _n_n: usize) {
        self.nodes.fetch_add(1, Ordering::Relaxed);
    }
    fn pruned(&self, _chain: &[usize], rule: regcluster_core::PruneRule) {
        // MiningStats deliberately carries no MinConds field (serialized
        // shape stability); skip it so the totals below stay comparable.
        if rule != regcluster_core::PruneRule::MinConds {
            self.pruned.fetch_add(1, Ordering::Relaxed);
        }
    }
    fn cluster_emitted(&self, _cluster: &RegCluster) {
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn user_observer_sees_the_same_event_totals_as_the_report() {
    let (m, params) = running_example();
    let counts = AtomicCounts::default();
    let report = mine_engine_with(
        &m,
        &params,
        &EngineConfig::new(4),
        &MineControl::new(),
        &counts,
    )
    .unwrap();
    assert_eq!(counts.nodes.load(Ordering::Relaxed), report.stats.nodes);
    assert_eq!(counts.emitted.load(Ordering::Relaxed), report.stats.emitted);
    assert_eq!(
        counts.pruned.load(Ordering::Relaxed),
        report.stats.pruned_min_genes
            + report.stats.pruned_few_p
            + report.stats.pruned_duplicate
            + report.stats.pruned_coherence
    );
}
