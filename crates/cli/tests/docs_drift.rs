//! Doc-drift guard for the observability catalogue: every metric family
//! the workspace can register, every phase label, and every prune-rule
//! label must be documented in `docs/OBSERVABILITY.md`. Mirrors the
//! USAGE-drift test in `args.rs` — add a metric, grow the doc.

use regcluster_cli::serve::ServeMetrics;
use regcluster_core::observer::PruneRule;
use regcluster_core::MetricsObserver;
use regcluster_engines::EngineMetrics;
use regcluster_obs::{MetricsRegistry, PhaseSpans, PHASES};

fn repo_doc(rel: &str) -> String {
    let path = format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{rel} must exist: {e}"))
}

fn observability_doc() -> String {
    repo_doc("docs/OBSERVABILITY.md")
}

#[test]
fn every_registered_metric_is_documented() {
    // Register every instrument the workspace exposes, from all four
    // layers, into one registry — metric_names() is then the ground truth.
    let registry = MetricsRegistry::new();
    let _ = MetricsObserver::register(&registry);
    let _ = PhaseSpans::new(&registry);
    let _ = ServeMetrics::register(&registry);
    let _ = EngineMetrics::register(&registry, "reg-cluster");
    let _ = regcluster_cluster::ClusterMetrics::register(&registry);
    let _ = regcluster_cluster::WorkerMetrics::register(&registry);
    regcluster_failpoint::register_metrics(&registry);

    let doc = observability_doc();
    let names = registry.metric_names();
    assert!(names.len() >= 10, "expected the full catalogue: {names:?}");
    for name in &names {
        assert!(
            doc.contains(name.as_str()),
            "metric `{name}` is not documented in docs/OBSERVABILITY.md"
        );
    }
}

#[test]
fn every_phase_and_prune_rule_label_is_documented() {
    let doc = observability_doc();
    for phase in PHASES {
        assert!(
            doc.contains(&format!("`{phase}`")),
            "phase label `{phase}` is not documented in docs/OBSERVABILITY.md"
        );
    }
    for rule in PruneRule::ALL {
        let label = rule.as_label();
        assert!(
            doc.contains(&format!("`{label}`")),
            "prune-rule label `{label}` is not documented in docs/OBSERVABILITY.md"
        );
    }
}

#[test]
fn every_engine_name_is_documented() {
    // The engine catalogue must stay in sync across the registry, the
    // metrics doc (label values) and the user guide (how to run one).
    let obs = observability_doc();
    let guide = repo_doc("docs/GUIDE.md");
    for name in regcluster_engines::ENGINE_NAMES {
        assert!(
            obs.contains(&format!("`{name}`")),
            "engine `{name}` is not listed in docs/OBSERVABILITY.md"
        );
        assert!(
            guide.contains(name),
            "engine `{name}` is not mentioned in docs/GUIDE.md"
        );
    }
}

#[test]
fn doc_is_linked_from_user_facing_pages() {
    for page in ["README.md", "docs/GUIDE.md"] {
        let text = repo_doc(page);
        assert!(
            text.contains("OBSERVABILITY.md"),
            "{page} must link to the observability catalogue"
        );
        assert!(
            text.contains("ROBUSTNESS.md"),
            "{page} must link to the robustness guide"
        );
    }
}

#[test]
fn generations_and_delta_mining_are_documented() {
    // DESIGN.md §13 owns the lifecycle/swap protocol, GUIDE.md the
    // operator recipe, OBSERVABILITY.md the swap metric. Renaming a flag
    // or metric without updating the trio is drift.
    let design = repo_doc("DESIGN.md");
    assert!(
        design.contains("## 13. Generations and delta mining"),
        "DESIGN.md must keep the generations/delta section"
    );
    for needle in [
        "root_fingerprints",
        "classify_roots",
        "`CURRENT`",
        "store::current_publish",
        regcluster_cli::serve::STORE_SWAPS_METRIC,
    ] {
        assert!(
            design.contains(needle),
            "DESIGN.md §13 must mention {needle}"
        );
    }

    let guide = repo_doc("docs/GUIDE.md");
    for needle in ["--delta-from", "--watch", "generation"] {
        assert!(
            guide.contains(needle),
            "docs/GUIDE.md live re-mining recipe must mention {needle}"
        );
    }

    // The swap counter registers lazily (per-generation label cells), so
    // the registry sweep above can't see it — pin it here explicitly.
    let obs = observability_doc();
    assert!(
        obs.contains(regcluster_cli::serve::STORE_SWAPS_METRIC),
        "swap metric must be in docs/OBSERVABILITY.md"
    );
    assert!(
        obs.contains("`generation`"),
        "the generation label must be documented"
    );
}

#[test]
fn distributed_cluster_is_documented() {
    // DESIGN.md §14 owns the lease/merge protocol, GUIDE.md §10 the
    // operator quickstart, OBSERVABILITY.md the coordinator's control
    // plane — renaming a subcommand, flag or endpoint without updating
    // the trio is drift.
    let design = repo_doc("DESIGN.md");
    assert!(
        design.contains("## 14. Distributed mining cluster"),
        "DESIGN.md must keep the distributed-cluster section"
    );
    for needle in [
        "partition_roots",
        "merge_shards",
        "validate_shard",
        "/lease/acquire",
        "/lease/renew",
        "`--linger`",
        "byte-identical",
    ] {
        assert!(
            design.contains(needle),
            "DESIGN.md §14 must mention {needle}"
        );
    }

    let guide = repo_doc("docs/GUIDE.md");
    for needle in [
        "regcluster coordinator",
        "regcluster worker",
        "--lease-ttl-ms",
        "--work-dir",
        "cluster_harness",
    ] {
        assert!(
            guide.contains(needle),
            "docs/GUIDE.md cluster quickstart must mention {needle}"
        );
    }

    // The watch-error counter is in the ServeMetrics sweep above, but
    // its operator story (absence vs failure) lives next to the swap
    // metric — pin the name so a rename can't strand the prose.
    let obs = observability_doc();
    assert!(
        obs.contains(regcluster_cli::serve::STORE_WATCH_ERRORS_METRIC),
        "watch-error metric must be in docs/OBSERVABILITY.md"
    );
}

#[test]
fn performance_hot_path_is_documented() {
    // docs/PERFORMANCE.md owns the hot-path cost model and the perf
    // harness contract, DESIGN.md §15 the layout rationale. Renaming a
    // harness mode, env var or the committed baseline without updating
    // the pair is drift.
    let perf = repo_doc("docs/PERFORMANCE.md");
    for needle in [
        "BENCH_hotpath.json",
        "--quick",
        "--check",
        "--check-baseline",
        "REGCLUSTER_PERF_THRESHOLD",
        "REGCLUSTER_BENCH_BASELINE",
        "scripts/perf.sh",
        "BitMask",
        "HotTables",
        "ns/node",
        "ns_per_node",
        "perf smoke",
        "tests/alloc.rs",
    ] {
        assert!(
            perf.contains(needle),
            "docs/PERFORMANCE.md must mention {needle}"
        );
    }

    let design = repo_doc("DESIGN.md");
    assert!(
        design.contains("## 15. Memory layout of the enumeration hot path"),
        "DESIGN.md must keep the hot-path memory-layout section"
    );
    for needle in [
        "`BitMask`",
        "`HotTables`",
        "or_range_masked",
        "counting-sort",
        "docs/PERFORMANCE.md",
    ] {
        assert!(
            design.contains(needle),
            "DESIGN.md §15 must mention {needle}"
        );
    }

    // The perf page must be reachable from the user-facing entry points,
    // and the harness recipe must live in the guide.
    for page in ["README.md", "docs/GUIDE.md"] {
        let text = repo_doc(page);
        assert!(
            text.contains("PERFORMANCE.md"),
            "{page} must link to the performance guide"
        );
    }
    let guide = repo_doc("docs/GUIDE.md");
    for needle in ["hotpath", "ns/node", "scripts/perf.sh"] {
        assert!(
            guide.contains(needle),
            "docs/GUIDE.md perf recipe must mention {needle}"
        );
    }
}

#[test]
fn every_failpoint_site_is_documented_in_robustness_md() {
    // The robustness guide carries the failpoint catalogue; arming a
    // site that isn't documented there (or documenting one that no
    // longer exists) is drift.
    let doc = repo_doc("docs/ROBUSTNESS.md");
    for site in regcluster_failpoint::SITES {
        assert!(
            doc.contains(&format!("`{site}`")),
            "failpoint site `{site}` is not documented in docs/ROBUSTNESS.md"
        );
    }
    assert!(
        doc.contains(regcluster_failpoint::FIRED_METRIC),
        "ROBUSTNESS.md must name the fired-fault metric"
    );
    assert!(
        doc.contains(regcluster_failpoint::ENV_VAR),
        "ROBUSTNESS.md must document the FAILPOINTS env var"
    );
}
