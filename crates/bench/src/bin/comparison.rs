//! Model-comparison experiment — the paper's §1/§3.3 claims, quantified.
//!
//! The paper argues (Figures 1, 2, 4 and §3.3) that prior models each
//! capture only a slice of the co-regulation structure reg-cluster targets:
//! pCluster finds pure shifting patterns, the log-space variant finds pure
//! scaling patterns, OPSM accepts any shared ordering (no coherence), and
//! none of them handles mixed shifting-and-scaling or negative correlation.
//! This binary plants each pattern family with the §5 generator and reports
//! **recovery** (planted modules rediscovered) and **relevance** (reported
//! clusters that correspond to planted structure) for every algorithm:
//!
//! * reg-cluster should recover shift-scale, shift-only and scale-only
//!   (they are special cases of its model) and *reject* incoherent
//!   tendencies;
//! * pCluster should recover shift-only and miss shift-scale;
//! * the scaling miner should recover scale-only and miss shift-scale;
//! * OPSM should recover anything order-preserving — including the
//!   incoherent tendency clusters — illustrating the missing coherence
//!   guarantee.
//!
//! Results are written to `results/comparison.json`.

use regcluster_baselines::{
    cheng_church, floc, microcluster, op_cluster, opsm, pcluster, scaling_pcluster,
    ChengChurchParams, FlocParams, MicroClusterParams, OpClusterParams, OpsmParams, PClusterParams,
};
use regcluster_bench::{time, write_json};
use regcluster_core::{mine, MiningParams};
use regcluster_datagen::{generate, PatternKind, SyntheticConfig};
use regcluster_eval::{recovery, relevance, ClusterShape};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    algorithm: &'static str,
    pattern: String,
    recovery: f64,
    relevance: f64,
    n_found: usize,
    runtime_s: f64,
}

fn dataset(
    pattern: PatternKind,
    seed: u64,
) -> (SyntheticConfig, regcluster_datagen::SyntheticDataset) {
    let cfg = SyntheticConfig {
        n_genes: 500,
        n_conds: 17,
        n_clusters: 4,
        avg_cluster_dims: 6,
        cluster_gene_frac: 0.03, // ~15 genes per cluster
        neg_fraction: if matches!(pattern, PatternKind::ShiftScale) {
            0.3
        } else {
            0.0
        },
        plant_gamma: 0.08,
        pattern,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed,
    };
    let data = generate(&cfg).expect("comparison config is feasible");
    (cfg, data)
}

fn main() {
    let patterns = [
        (PatternKind::ShiftScale, "shift-scale"),
        (PatternKind::ShiftOnly, "shift-only"),
        (PatternKind::ScaleOnly, "scale-only"),
        (PatternKind::Tendency, "tendency"),
    ];
    let mut cells: Vec<Cell> = Vec::new();

    for (pattern, name) in patterns {
        let (_, data) = dataset(pattern, 97);
        let truth: Vec<ClusterShape> = data.planted.iter().map(ClusterShape::from).collect();
        let min_g = data.planted.iter().map(|p| p.n_genes()).min().unwrap();
        let min_c = data.planted.iter().map(|p| p.n_conditions()).min().unwrap();
        eprintln!(
            "{name}: {} planted clusters (≥{min_g} genes × ≥{min_c} conds)",
            truth.len()
        );

        // reg-cluster, mined below the planting threshold with tight ε, as
        // the paper's efficiency experiments do.
        let params = MiningParams::new(min_g, min_c, 0.05, 0.02)
            .expect("valid params")
            .with_maximal_only();
        let (found, secs) = time(|| mine(&data.matrix, &params).expect("mining succeeds"));
        push_cell(
            &mut cells,
            "reg-cluster",
            name,
            &truth,
            found.iter().map(ClusterShape::from).collect(),
            secs,
        );

        // pCluster: δ chosen for near-exact shifts after planting noise-free
        // patterns (spread tolerance comparable to ε above).
        let pc_params = PClusterParams {
            delta: 0.15,
            min_genes: min_g,
            min_conds: min_c,
            ..Default::default()
        };
        let (found, secs) = time(|| pcluster(&data.matrix, &pc_params));
        push_cell(
            &mut cells,
            "pCluster",
            name,
            &truth,
            found
                .iter()
                .map(|b| ClusterShape::new(b.genes.clone(), b.conds.clone()))
                .collect(),
            secs,
        );

        // Scaling miner: pCluster in log₂ space (values are positive).
        let sc_params = PClusterParams {
            delta: 0.05,
            min_genes: min_g,
            min_conds: min_c,
            ..Default::default()
        };
        let (found, secs) = time(|| scaling_pcluster(&data.matrix, &sc_params).unwrap_or_default());
        push_cell(
            &mut cells,
            "scaling(log-pCluster)",
            name,
            &truth,
            found
                .iter()
                .map(|b| ClusterShape::new(b.genes.clone(), b.conds.clone()))
                .collect(),
            secs,
        );

        // MicroCluster: TriCluster's native 2D ratio-range phase (the
        // second pure-scaling representative).
        let mc_params = MicroClusterParams {
            epsilon: 0.05,
            min_genes: min_g,
            min_conds: min_c,
            max_clusters: 50,
            ..Default::default()
        };
        let (found, secs) = time(|| microcluster(&data.matrix, &mc_params));
        push_cell(
            &mut cells,
            "MicroCluster(ratio)",
            name,
            &truth,
            found
                .iter()
                .map(|b| ClusterShape::new(b.genes.clone(), b.conds.clone()))
                .collect(),
            secs,
        );

        // OPSM at every planted dimensionality (one model size per run, as
        // in the original algorithm), results merged.
        let max_c = data.planted.iter().map(|p| p.n_conditions()).max().unwrap();
        let (found, secs) = time(|| {
            (min_c..=max_c)
                .flat_map(|size| {
                    let op_params = OpsmParams {
                        size,
                        beam_width: 200,
                        min_genes: min_g,
                        max_models: 10,
                    };
                    opsm(&data.matrix, &op_params)
                })
                .collect::<Vec<_>>()
        });
        push_cell(
            &mut cells,
            "OPSM",
            name,
            &truth,
            found
                .iter()
                .map(|b| ClusterShape::new(b.genes.clone(), b.conds.clone()))
                .collect(),
            secs,
        );

        // OP-Cluster (tendency with similarity grouping, the paper's [18]).
        let oc_params = OpClusterParams {
            group_multiplier: 0.25,
            min_genes: min_g,
            min_conds: min_c,
            max_clusters: 20,
        };
        let (found, secs) = time(|| op_cluster(&data.matrix, &oc_params));
        push_cell(
            &mut cells,
            "OP-Cluster",
            name,
            &truth,
            found
                .iter()
                .map(|b| ClusterShape::new(b.genes.clone(), b.conds.clone()))
                .collect(),
            secs,
        );

        // FLOC δ-clusters (additive residue, the paper's [25]).
        let fl_params = FlocParams {
            n_clusters: truth.len() + 2,
            delta: 0.2,
            seed_prob: 0.2,
            max_iterations: 30,
            min_genes: min_g,
            min_conds: min_c,
            seed: 11,
        };
        let (found, secs) = time(|| floc(&data.matrix, &fl_params));
        push_cell(
            &mut cells,
            "FLOC(delta-cluster)",
            name,
            &truth,
            found
                .iter()
                .map(|b| ClusterShape::new(b.genes.clone(), b.conds.clone()))
                .collect(),
            secs,
        );

        // Cheng–Church with a permissive residue budget.
        let cc_params = ChengChurchParams {
            delta: 0.2,
            n_clusters: truth.len(),
            mask_range: (0.0, 10.0),
            seed: 5,
            ..Default::default()
        };
        let (found, secs) = time(|| cheng_church(&data.matrix, &cc_params));
        push_cell(
            &mut cells,
            "Cheng-Church",
            name,
            &truth,
            found
                .iter()
                .map(|b| ClusterShape::new(b.bicluster.genes.clone(), b.bicluster.conds.clone()))
                .collect(),
            secs,
        );
    }

    println!("\nrecovery / relevance by algorithm and planted pattern family");
    println!(
        "{:<22}{:<14}{:>9}{:>10}{:>8}{:>10}",
        "algorithm", "pattern", "recovery", "relevance", "found", "time(s)"
    );
    for c in &cells {
        println!(
            "{:<22}{:<14}{:>9.3}{:>10.3}{:>8}{:>10.3}",
            c.algorithm, c.pattern, c.recovery, c.relevance, c.n_found, c.runtime_s
        );
    }
    write_json("comparison.json", &cells);
}

fn push_cell(
    cells: &mut Vec<Cell>,
    algorithm: &'static str,
    pattern: &str,
    truth: &[ClusterShape],
    found: Vec<ClusterShape>,
    runtime_s: f64,
) {
    cells.push(Cell {
        algorithm,
        pattern: pattern.to_string(),
        recovery: recovery(truth, &found),
        relevance: relevance(&found, truth),
        n_found: found.len(),
        runtime_s,
    });
}
