//! The `RWave^γ` regulation model (Definition 3.1 of the paper).
//!
//! For one gene, the model is the non-descending ordering of all conditions
//! by expression value, annotated with **regulation pointers**: non-nested
//! rank intervals `lo ↰ hi` such that the expression difference between the
//! conditions at ranks `hi` and `lo` exceeds the gene's regulation threshold
//! `γ_i`. A pointer `lo ↰ hi` certifies that *every* condition at rank
//! `≤ lo` is a regulation predecessor of *every* condition at rank `≥ hi`
//! (Lemma 3.1), so the regulation relationship of any condition pair is
//! answered by a single binary search instead of checking all `C(n,2)` pairs.
//!
//! Construction follows the paper's algorithm (Figure 5): conditions are
//! scanned in value order; each condition links to its *closest* regulation
//! predecessor unless an existing pointer is already nested inside that span.
//! Because values are scanned in non-descending order the closest-predecessor
//! rank is non-decreasing, which makes the nesting test O(1): a new pointer
//! is embedded-free iff its predecessor rank is strictly beyond the last
//! pointer's.
//!
//! The model additionally precomputes, for every rank, the length of the
//! longest regulation chain that can start there (forward, toward higher
//! values) or end there (backward). These power the miner's MinC pruning
//! (pruning strategy (2)). The greedy recurrence
//! `maxlen(r) = 1 + maxlen(hi of first pointer with lo ≥ r)` is exact
//! because `maxlen` is non-increasing in rank (proved by induction: the
//! first-usable-pointer head `hi(r)` is non-decreasing in `r`).

use regcluster_matrix::CondId;

/// A regulation pointer in rank coordinates: the condition at rank `hi` is
/// up-regulated w.r.t. the condition at rank `lo` (difference `> γ_i`), and
/// the interval is minimal (no other pointer nests inside `[lo, hi]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pointer {
    /// Rank of the lower (predecessor) end.
    pub lo: u32,
    /// Rank of the upper (successor) end.
    pub hi: u32,
}

/// The `RWave^γ` model of a single gene.
#[derive(Debug, Clone)]
pub struct RWaveModel {
    /// `order[rank] = condition id`, ranks sorted by non-descending value
    /// (ties broken by condition id for determinism).
    order: Vec<u32>,
    /// `rank[condition id] = rank`.
    rank: Vec<u32>,
    /// `values[rank]` = expression level at that rank (non-descending).
    values: Vec<f64>,
    /// Regulation pointers with strictly increasing `lo` and `hi`.
    pointers: Vec<Pointer>,
    /// `maxlen_fwd[rank]` = length of the longest regulation chain starting
    /// at `rank` and moving toward higher values.
    maxlen_fwd: Vec<u32>,
    /// `maxlen_bwd[rank]` = length of the longest regulation chain starting
    /// at `rank` and moving toward lower values.
    maxlen_bwd: Vec<u32>,
    /// The resolved per-gene regulation threshold `γ_i`.
    gamma: f64,
}

impl RWaveModel {
    /// Builds the model for one gene profile with resolved threshold
    /// `gamma_i`.
    ///
    /// ```
    /// use regcluster_core::rwave::RWaveModel;
    ///
    /// // g1 of the paper's running example, γ_1 = 0.15 · range = 4.5.
    /// let g1 = [10.0, -14.5, 15.0, 10.5, 0.0, 14.5, -15.0, 0.0, -5.0, -5.0];
    /// let model = RWaveModel::build(&g1, 4.5);
    ///
    /// // Pointer structure of Figure 3, in rank coordinates.
    /// let pointers: Vec<(u32, u32)> =
    ///     model.pointers().iter().map(|p| (p.lo, p.hi)).collect();
    /// assert_eq!(pointers, vec![(1, 2), (3, 4), (5, 6), (6, 9)]);
    ///
    /// // 5-chains start only at the two lowest conditions (c7, c2).
    /// assert_eq!(model.max_chain_fwd(0), 5);
    /// assert_eq!(model.max_chain_fwd(2), 4);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the profile is empty or `gamma_i` is negative/non-finite
    /// (enforced upstream by parameter validation).
    pub fn build(profile: &[f64], gamma_i: f64) -> Self {
        assert!(!profile.is_empty(), "profile must be non-empty");
        assert!(
            gamma_i.is_finite() && gamma_i >= 0.0,
            "gamma_i must be finite and ≥ 0"
        );
        let n = profile.len();

        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            profile[a as usize]
                .total_cmp(&profile[b as usize])
                .then(a.cmp(&b))
        });
        let mut rank = vec![0u32; n];
        for (r, &c) in order.iter().enumerate() {
            rank[c as usize] = r as u32;
        }
        let values: Vec<f64> = order.iter().map(|&c| profile[c as usize]).collect();

        // Pointer construction: for each rank j, the closest regulation
        // predecessor is the largest rank p with values[j] − values[p] > γ_i
        // (strict, per Equation 3 — evaluated as exactly that expression so
        // the pointer relation coincides bit-for-bit with the direct
        // difference test used by `is_up_regulated`). Skip if the last
        // pointer already has the same predecessor (it would be nested
        // inside the new span).
        let mut pointers: Vec<Pointer> = Vec::new();
        for j in 1..n {
            // partition_point over the monotone predicate
            // values[j] − v > γ_i ⇒ p = idx − 1.
            let idx = values[..j].partition_point(|v| values[j] - *v > gamma_i);
            if idx == 0 {
                continue; // no regulation predecessor for rank j
            }
            let p = (idx - 1) as u32;
            if pointers.last().is_none_or(|pt| pt.lo < p) {
                pointers.push(Pointer {
                    lo: p,
                    hi: j as u32,
                });
            }
        }

        // Maximal chain lengths by the exact greedy recurrence.
        let mut maxlen_fwd = vec![1u32; n];
        for r in (0..n).rev() {
            // First pointer with lo >= r.
            let i = pointers.partition_point(|pt| (pt.lo as usize) < r);
            if i < pointers.len() {
                let hi = pointers[i].hi as usize;
                maxlen_fwd[r] = 1 + maxlen_fwd[hi];
            }
        }
        let mut maxlen_bwd = vec![1u32; n];
        for r in 0..n {
            // Last pointer with hi <= r.
            let i = pointers.partition_point(|pt| (pt.hi as usize) <= r);
            if i > 0 {
                let lo = pointers[i - 1].lo as usize;
                maxlen_bwd[r] = 1 + maxlen_bwd[lo];
            }
        }

        Self {
            order,
            rank,
            values,
            pointers,
            maxlen_fwd,
            maxlen_bwd,
            gamma: gamma_i,
        }
    }

    /// Number of conditions in the model.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the model covers no conditions (never happens for models
    /// built from a valid matrix; present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The resolved per-gene threshold `γ_i`.
    #[inline]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Rank of condition `c` in the value ordering.
    #[inline]
    pub fn rank_of(&self, c: CondId) -> usize {
        self.rank[c] as usize
    }

    /// Condition id at rank `r`.
    #[inline]
    pub fn cond_at(&self, r: usize) -> CondId {
        self.order[r] as CondId
    }

    /// Expression value at rank `r`.
    #[inline]
    pub fn value_at(&self, r: usize) -> f64 {
        self.values[r]
    }

    /// The regulation pointers, ordered by strictly increasing `lo`/`hi`.
    #[inline]
    pub fn pointers(&self) -> &[Pointer] {
        &self.pointers
    }

    /// Smallest rank `s` such that every condition at rank `≥ s` is a
    /// regulation successor of the condition at rank `r` (Lemma 3.1), or
    /// `None` when `r` has no regulation successor.
    pub fn successor_start(&self, r: usize) -> Option<usize> {
        let i = self.pointers.partition_point(|pt| (pt.lo as usize) < r);
        self.pointers.get(i).map(|pt| pt.hi as usize)
    }

    /// Largest rank `p` such that every condition at rank `≤ p` is a
    /// regulation predecessor of the condition at rank `r` (Lemma 3.1), or
    /// `None` when `r` has no regulation predecessor.
    pub fn predecessor_end(&self, r: usize) -> Option<usize> {
        let i = self.pointers.partition_point(|pt| (pt.hi as usize) <= r);
        i.checked_sub(1).map(|i| self.pointers[i].lo as usize)
    }

    /// True when the condition at rank `hi_rank` is up-regulated w.r.t. the
    /// condition at rank `lo_rank`: their expression difference exceeds
    /// `γ_i`, which (a proved and tested property of the pointer
    /// construction) holds **iff** the two ranks are separated by at least
    /// one regulation pointer. Answered by the O(1) value comparison; see
    /// [`RWaveModel::is_up_regulated_via_pointers`] for the pointer-walk
    /// variant and the `regulation_query` bench for the measured gap.
    #[inline]
    pub fn is_up_regulated(&self, lo_rank: usize, hi_rank: usize) -> bool {
        debug_assert!(lo_rank <= hi_rank);
        self.values[hi_rank] - self.values[lo_rank] > self.gamma
    }

    /// The pointer-indexed regulation query (one binary search), exactly
    /// equivalent to [`RWaveModel::is_up_regulated`] — kept public so the
    /// equivalence is testable and benchmarkable.
    #[inline]
    pub fn is_up_regulated_via_pointers(&self, lo_rank: usize, hi_rank: usize) -> bool {
        debug_assert!(lo_rank <= hi_rank);
        match self.successor_start(lo_rank) {
            Some(s) => s <= hi_rank,
            None => false,
        }
    }

    /// Length of the longest regulation chain starting at rank `r` and
    /// moving toward higher expression values.
    #[inline]
    pub fn max_chain_fwd(&self, r: usize) -> usize {
        self.maxlen_fwd[r] as usize
    }

    /// Length of the longest regulation chain starting at rank `r` and
    /// moving toward lower expression values.
    #[inline]
    pub fn max_chain_bwd(&self, r: usize) -> usize {
        self.maxlen_bwd[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// g1 of the running dataset (Table 1); γ_1 = 0.15 · 30 = 4.5.
    const G1: [f64; 10] = [10.0, -14.5, 15.0, 10.5, 0.0, 14.5, -15.0, 0.0, -5.0, -5.0];
    /// g2; γ_2 = 0.15 · 30 = 4.5.
    const G2: [f64; 10] = [20.0, 15.0, 15.0, 43.5, 30.0, 44.0, 45.0, 43.0, 35.0, 20.0];
    /// g3; γ_3 = 0.15 · 12 = 1.8.
    const G3: [f64; 10] = [6.0, -3.8, 8.0, 6.2, 2.0, 7.8, -4.0, 2.0, 0.0, 0.0];

    fn m1() -> RWaveModel {
        RWaveModel::build(&G1, 4.5)
    }
    fn m2() -> RWaveModel {
        RWaveModel::build(&G2, 4.5)
    }
    fn m3() -> RWaveModel {
        RWaveModel::build(&G3, 1.8)
    }

    #[test]
    fn ordering_is_nondescending_with_id_tiebreak() {
        let m = m1();
        // sorted: c7(-15) c2(-14.5) c9(-5) c10(-5) c5(0) c8(0) c1(10) c4(10.5) c6(14.5) c3(15)
        let expected: Vec<usize> = vec![6, 1, 8, 9, 4, 7, 0, 3, 5, 2];
        let order: Vec<usize> = (0..10).map(|r| m.cond_at(r)).collect();
        assert_eq!(order, expected);
        for r in 1..10 {
            assert!(m.value_at(r) >= m.value_at(r - 1));
        }
        for c in 0..10 {
            assert_eq!(m.cond_at(m.rank_of(c)), c);
        }
    }

    #[test]
    fn g1_pointers_match_figure_3() {
        let m = m1();
        let pts: Vec<(u32, u32)> = m.pointers().iter().map(|p| (p.lo, p.hi)).collect();
        // Bordering pairs of the RWave^{0.15} model for g1 (Figure 3):
        // (c2 ↰ c9), (c10 ↰ c5), (c8 ↰ c1), (c1 ↰ c3) in rank coordinates.
        assert_eq!(pts, vec![(1, 2), (3, 4), (5, 6), (6, 9)]);
    }

    #[test]
    fn g2_pointers_match_figure_3() {
        let m = m2();
        let pts: Vec<(u32, u32)> = m.pointers().iter().map(|p| (p.lo, p.hi)).collect();
        assert_eq!(pts, vec![(1, 2), (3, 4), (4, 5), (5, 6)]);
    }

    #[test]
    fn g3_pointers_match_g1_structure() {
        // g3 is a perfect shifting-and-scaling image of g1, so its RWave
        // structure coincides.
        let m = m3();
        let pts: Vec<(u32, u32)> = m.pointers().iter().map(|p| (p.lo, p.hi)).collect();
        assert_eq!(pts, vec![(1, 2), (3, 4), (5, 6), (6, 9)]);
    }

    #[test]
    fn pointers_are_non_nested_and_regulated() {
        for m in [m1(), m2(), m3()] {
            for w in m.pointers().windows(2) {
                assert!(w[0].lo < w[1].lo, "lo strictly increasing");
                assert!(w[0].hi < w[1].hi, "hi strictly increasing");
            }
            for p in m.pointers() {
                assert!(
                    m.value_at(p.hi as usize) - m.value_at(p.lo as usize) > m.gamma(),
                    "pointer span must exceed γ_i"
                );
            }
        }
    }

    #[test]
    fn predecessors_of_c6_for_g1_match_paper() {
        // Paper §3.1: the regulation predecessors of c6 (index 5) for g1 are
        // exactly {c7, c2, c10, c9, c8, c5}, found via the nearest pointer
        // before it; and c6 has no regulation successors.
        let m = m1();
        let r_c6 = m.rank_of(5);
        assert_eq!(r_c6, 8);
        let p_end = m.predecessor_end(r_c6).unwrap();
        assert_eq!(p_end, 5);
        let preds: Vec<usize> = (0..=p_end).map(|r| m.cond_at(r)).collect();
        let mut sorted = preds.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 4, 6, 7, 8, 9]); // c2, c5, c7, c8, c9, c10
        assert_eq!(m.successor_start(r_c6), None);
    }

    #[test]
    fn pointer_query_equals_value_query_exhaustively() {
        // The two implementations of the regulation relation must agree on
        // every rank pair, bit-for-bit, including threshold-boundary data.
        let boundary = [0.0f64, 1.0, 2.0, 2.0 + 1e-15, 3.0, 4.5];
        for (profile, gamma) in [
            (G1.to_vec(), 4.5),
            (G2.to_vec(), 4.5),
            (G3.to_vec(), 1.8),
            (boundary.to_vec(), 2.0),
            (vec![5.0; 4], 0.0),
        ] {
            let m = RWaveModel::build(&profile, gamma);
            for a in 0..m.len() {
                for b in a..m.len() {
                    assert_eq!(
                        m.is_up_regulated(a, b),
                        m.is_up_regulated_via_pointers(a, b),
                        "ranks ({a}, {b}) on {profile:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma_3_1_predecessor_soundness() {
        // Every (pred, succ) pair certified by the model must differ by more
        // than γ_i — for all three genes and all rank pairs.
        for (profile, gamma) in [(G1, 4.5), (G2, 4.5), (G3, 1.8)] {
            let m = RWaveModel::build(&profile, gamma);
            for a in 0..m.len() {
                for b in a..m.len() {
                    if m.is_up_regulated(a, b) {
                        assert!(m.value_at(b) - m.value_at(a) > gamma);
                    }
                }
            }
        }
    }

    #[test]
    fn running_example_chain_is_fully_regulated() {
        // The chain c7 ↰ c9 ↰ c5 ↰ c1 ↰ c3 of Figure 2, forward for g1/g3
        // and backward (inverted) for g2.
        let chain = [6usize, 8, 4, 0, 2];
        for m in [m1(), m3()] {
            for w in chain.windows(2) {
                assert!(m.is_up_regulated(m.rank_of(w[0]), m.rank_of(w[1])));
            }
        }
        let m = m2();
        for w in chain.windows(2) {
            assert!(m.is_up_regulated(m.rank_of(w[1]), m.rank_of(w[0])));
        }
    }

    #[test]
    fn max_chain_lengths_for_running_example() {
        let m = m1();
        // Forward chains of length ≥ 5 start only at c7 (rank 0) and c2 (rank 1).
        assert_eq!(m.max_chain_fwd(0), 5);
        assert_eq!(m.max_chain_fwd(1), 5);
        assert_eq!(m.max_chain_fwd(2), 4);
        assert_eq!(m.max_chain_fwd(6), 2);
        assert_eq!(m.max_chain_fwd(9), 1);
        let m = m2();
        assert_eq!(m.max_chain_fwd(0), 5);
        assert_eq!(m.max_chain_fwd(1), 5);
        assert_eq!(m.max_chain_fwd(2), 4);
        // Backward from the top of g2 (c7 at rank 9) a 5-chain exists.
        assert_eq!(m.max_chain_bwd(9), 5);
    }

    #[test]
    fn max_chain_is_consistent_with_exhaustive_search() {
        // Brute-force the longest chain by dynamic programming over all rank
        // pairs and compare with the greedy table.
        for (profile, gamma) in [(G1, 4.5), (G2, 4.5), (G3, 1.8)] {
            let m = RWaveModel::build(&profile, gamma);
            let n = m.len();
            let mut best = vec![1usize; n];
            for a in (0..n).rev() {
                for b in a + 1..n {
                    if m.is_up_regulated(a, b) {
                        best[a] = best[a].max(1 + best[b]);
                    }
                }
            }
            for (r, &expected) in best.iter().enumerate() {
                assert_eq!(m.max_chain_fwd(r), expected, "rank {r}");
            }
        }
    }

    #[test]
    fn zero_gamma_links_strictly_increasing_values() {
        let m = RWaveModel::build(&[3.0, 1.0, 2.0], 0.0);
        // Every strictly-greater pair is regulated.
        assert!(m.is_up_regulated(0, 1));
        assert!(m.is_up_regulated(1, 2));
        assert!(m.is_up_regulated(0, 2));
        assert_eq!(m.max_chain_fwd(0), 3);
    }

    #[test]
    fn ties_are_never_regulated_at_zero_gamma() {
        let m = RWaveModel::build(&[5.0, 5.0, 5.0], 0.0);
        assert!(m.pointers().is_empty());
        assert_eq!(m.max_chain_fwd(0), 1);
        assert_eq!(m.successor_start(0), None);
        assert_eq!(m.predecessor_end(2), None);
    }

    #[test]
    fn flat_profile_has_no_structure() {
        let m = RWaveModel::build(&[1.0; 4], 0.5);
        assert!(m.pointers().is_empty());
        for r in 0..4 {
            assert_eq!(m.max_chain_fwd(r), 1);
            assert_eq!(m.max_chain_bwd(r), 1);
        }
    }

    #[test]
    fn single_condition_model() {
        let m = RWaveModel::build(&[2.0], 0.1);
        assert_eq!(m.len(), 1);
        assert!(m.pointers().is_empty());
        assert_eq!(m.max_chain_fwd(0), 1);
    }

    #[test]
    fn forward_backward_symmetry() {
        // Negating a profile mirrors the model: maxlen_fwd of the original at
        // rank r equals maxlen_bwd of the negation at rank n-1-r.
        let profile = G1;
        let neg: Vec<f64> = profile.iter().map(|v| -v).collect();
        let a = RWaveModel::build(&profile, 4.5);
        let b = RWaveModel::build(&neg, 4.5);
        let n = profile.len();
        for r in 0..n {
            assert_eq!(a.max_chain_fwd(r), b.max_chain_bwd(n - 1 - r));
            assert_eq!(a.max_chain_bwd(r), b.max_chain_fwd(n - 1 - r));
        }
    }
}
