//! Mining parameters (the inputs of Figure 5 of the paper).

use serde::{Deserialize, Serialize};

use crate::{CoreError, RegulationThreshold};

/// Parameters of a reg-cluster mining run.
///
/// These correspond one-to-one to the inputs of the paper's algorithm
/// (Figure 5): `MinG`, `MinC`, the regulation threshold `γ` and the coherence
/// threshold `ε`. Two engineering extensions are available: an output cap
/// (`max_clusters`) as a safety valve for exploratory parameter settings, and
/// a post-filter that keeps only clusters not fully contained in another
/// (`maximal_only`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiningParams {
    /// `MinG` — minimum number of member genes (p-members + n-members).
    pub min_genes: usize,
    /// `MinC` — minimum regulation-chain length (number of conditions).
    pub min_conds: usize,
    /// Regulation threshold strategy resolving to per-gene `γ_i`.
    pub gamma: RegulationThreshold,
    /// `ε` — maximum allowed spread of coherence scores at each chain step.
    pub epsilon: f64,
    /// Optional cap on the number of reported clusters, applied after the
    /// canonical output sort so the kept subset is deterministic at any
    /// thread count. `None` (default) reports everything like the paper.
    /// For a cooperative early *stop* (nondeterministic subset) use
    /// [`CappedSink`](crate::engine::CappedSink) instead.
    pub max_clusters: Option<usize>,
    /// When `true`, drop every cluster whose gene set and condition set are
    /// both subsets of another reported cluster's. The paper reports all
    /// validated chains (overlap between clusters is expected and reported in
    /// its §5.2); this post-filter is off by default.
    pub maximal_only: bool,
}

impl MiningParams {
    /// Creates parameters with the paper's default threshold strategy
    /// (fraction of per-gene range, Equation 4).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] if any value is out of domain;
    /// see [`MiningParams::validate`].
    pub fn new(
        min_genes: usize,
        min_conds: usize,
        gamma: f64,
        epsilon: f64,
    ) -> Result<Self, CoreError> {
        let p = Self {
            min_genes,
            min_conds,
            gamma: RegulationThreshold::FractionOfRange(gamma),
            epsilon,
            max_clusters: None,
            maximal_only: false,
        };
        p.validate()?;
        Ok(p)
    }

    /// Replaces the regulation-threshold strategy.
    ///
    /// # Errors
    ///
    /// Returns an error if the strategy's parameter is out of domain.
    pub fn with_threshold(mut self, gamma: RegulationThreshold) -> Result<Self, CoreError> {
        gamma.validate()?;
        self.gamma = gamma;
        Ok(self)
    }

    /// Caps the number of reported clusters (canonically-first subset).
    #[must_use]
    pub fn with_max_clusters(mut self, cap: usize) -> Self {
        self.max_clusters = Some(cap);
        self
    }

    /// Enables the maximal-only post-filter.
    #[must_use]
    pub fn with_maximal_only(mut self) -> Self {
        self.maximal_only = true;
        self
    }

    /// Checks all parameter domains.
    ///
    /// # Errors
    ///
    /// * `min_genes == 0` or `min_conds < 2` (a regulation chain needs at
    ///   least one regulated pair);
    /// * `epsilon` negative or non-finite;
    /// * threshold strategy out of domain.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.min_genes == 0 {
            return Err(CoreError::InvalidParams("min_genes must be ≥ 1".into()));
        }
        if self.min_conds < 2 {
            return Err(CoreError::InvalidParams(
                "min_conds must be ≥ 2 (a chain needs at least one regulated pair)".into(),
            ));
        }
        if !(self.epsilon.is_finite() && self.epsilon >= 0.0) {
            return Err(CoreError::InvalidParams(format!(
                "epsilon must be a finite value ≥ 0, got {}",
                self.epsilon
            )));
        }
        self.gamma.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_and_defaults() {
        let p = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
        assert_eq!(p.min_genes, 3);
        assert_eq!(p.min_conds, 5);
        assert_eq!(p.gamma, RegulationThreshold::FractionOfRange(0.15));
        assert_eq!(p.epsilon, 0.1);
        assert_eq!(p.max_clusters, None);
        assert!(!p.maximal_only);
    }

    #[test]
    fn rejects_bad_domains() {
        assert!(MiningParams::new(0, 5, 0.1, 0.1).is_err());
        assert!(MiningParams::new(3, 1, 0.1, 0.1).is_err());
        assert!(MiningParams::new(3, 5, -0.1, 0.1).is_err());
        assert!(MiningParams::new(3, 5, 1.1, 0.1).is_err());
        assert!(MiningParams::new(3, 5, 0.1, -1.0).is_err());
        assert!(MiningParams::new(3, 5, 0.1, f64::NAN).is_err());
    }

    #[test]
    fn builders_compose() {
        let p = MiningParams::new(3, 5, 0.15, 0.1)
            .unwrap()
            .with_threshold(RegulationThreshold::Absolute(2.0))
            .unwrap()
            .with_max_clusters(10)
            .with_maximal_only();
        assert_eq!(p.gamma, RegulationThreshold::Absolute(2.0));
        assert_eq!(p.max_clusters, Some(10));
        assert!(p.maximal_only);
    }

    #[test]
    fn with_threshold_rejects_bad_strategy() {
        let p = MiningParams::new(3, 5, 0.15, 0.1).unwrap();
        assert!(p
            .with_threshold(RegulationThreshold::Absolute(-1.0))
            .is_err());
    }

    #[test]
    fn epsilon_zero_is_legal() {
        assert!(MiningParams::new(2, 2, 0.0, 0.0).is_ok());
    }
}
