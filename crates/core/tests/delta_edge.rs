//! Edge cases of the delta-mining root classification
//! (`core::delta::classify_roots`) and a property check of the root
//! fingerprints' locality: a root's fingerprint reads only its level-1
//! member rows, so shuffling the *other* genes' rows cannot dirty it.

use proptest::prelude::*;

use regcluster_core::{classify_roots, root_fingerprints, Miner, MiningParams};
use regcluster_matrix::ExpressionMatrix;

#[test]
fn empty_fingerprint_vectors_are_a_clean_plan() {
    // A matrix with no conditions has no enumeration roots: the diff is
    // vacuously clean and the mask is empty.
    let plan = classify_roots(&[], &[]).unwrap();
    assert!(plan.is_clean());
    assert!(plan.dirty.is_empty());
    assert!(plan.unchanged.is_empty());
    assert!(plan.unchanged_mask().is_empty());
}

#[test]
fn completely_rewritten_matrix_is_all_dirty() {
    let params = MiningParams::new(1, 2, 0.15, 1.0).unwrap();
    let before =
        ExpressionMatrix::from_flat_unlabeled(2, 3, vec![1.0, 2.0, 3.0, 3.0, 2.0, 1.0]).unwrap();
    // Every row changes, so every root's member multiset changes.
    let after =
        ExpressionMatrix::from_flat_unlabeled(2, 3, vec![9.0, 7.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
    let old = root_fingerprints(&Miner::new(&before, &params).unwrap());
    let new = root_fingerprints(&Miner::new(&after, &params).unwrap());
    let plan = classify_roots(&old, &new).unwrap();
    assert!(plan.unchanged.is_empty(), "{plan:?}");
    assert_eq!(plan.dirty, (0..before.n_conditions()).collect::<Vec<_>>());
    assert!(plan.unchanged_mask().iter().all(|&u| !u));
}

#[test]
fn mask_and_partition_cover_every_root_once() {
    let old = [1u64, 2, 3, 4, 5];
    let new = [1u64, 9, 3, 9, 5];
    let plan = classify_roots(&old, &new).unwrap();
    assert_eq!(plan.dirty, vec![1, 3]);
    assert_eq!(plan.unchanged, vec![0, 2, 4]);
    let mask = plan.unchanged_mask();
    assert_eq!(mask, vec![true, false, true, false, true]);
}

/// A random matrix whose genes split into "members everywhere" candidates
/// and background rows, plus a permutation of the background.
fn matrix_strategy() -> impl Strategy<Value = (usize, usize, Vec<f64>)> {
    (3usize..=7, 3usize..=6).prop_flat_map(|(n_genes, n_conds)| {
        let values = prop::collection::vec(-20.0f64..20.0, n_genes * n_conds);
        (Just(n_genes), Just(n_conds), values)
    })
}

proptest! {
    /// Fingerprint locality: permuting the rows of genes that are *not*
    /// level-1 members of root `r` (amongst indices that are also
    /// non-members) leaves `r`'s fingerprint untouched, because the
    /// fingerprint hashes exactly the member list — ids, directions and
    /// member rows.
    #[test]
    fn root_fingerprints_ignore_non_member_rows(
        (n_genes, n_conds, values) in matrix_strategy(),
        seed in 0u64..1000,
    ) {
        let params = MiningParams::new(1, 2, 0.15, 1.0).unwrap();
        let m = ExpressionMatrix::from_flat_unlabeled(n_genes, n_conds, values.clone()).unwrap();
        let miner = Miner::new(&m, &params).unwrap();
        let before = root_fingerprints(&miner);

        for root in 0..n_conds {
            let members: std::collections::HashSet<usize> = miner
                .root_member_genes(root)
                .into_iter()
                .map(|(gene, _dir)| gene)
                .collect();
            let mut outsiders: Vec<usize> =
                (0..n_genes).filter(|g| !members.contains(g)).collect();
            if outsiders.len() < 2 {
                continue; // nothing to permute
            }
            // Deterministic rotation keyed by the seed: a nontrivial
            // permutation of the outsider rows.
            let rot = 1 + (seed as usize) % (outsiders.len() - 1);
            outsiders.rotate_left(rot);

            let mut rows: Vec<Vec<f64>> = (0..n_genes).map(|g| m.row(g).to_vec()).collect();
            let originals: Vec<usize> =
                (0..n_genes).filter(|g| !members.contains(g)).collect();
            for (dst, src) in originals.iter().zip(&outsiders) {
                rows[*dst] = m.row(*src).to_vec();
            }
            let flat: Vec<f64> = rows.into_iter().flatten().collect();
            let shuffled =
                ExpressionMatrix::from_flat_unlabeled(n_genes, n_conds, flat).unwrap();
            let after = root_fingerprints(&Miner::new(&shuffled, &params).unwrap());
            prop_assert_eq!(
                before[root], after[root],
                "root {}'s fingerprint read a non-member row", root
            );
        }
    }
}
