//! End-to-end tests of the compiled `regcluster` binary: real process, real
//! argv, real exit codes.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_regcluster"))
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regcluster-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("regcluster mine"));
    assert!(text.contains("regcluster baseline"));
}

#[test]
fn bad_arguments_exit_nonzero_with_stderr() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown subcommand"), "{err}");

    let out = bin().args(["mine", "--input"]).output().unwrap();
    assert!(!out.status.success());

    let out = bin()
        .args(["info", "--input", "/definitely/not/here.tsv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn full_pipeline_through_the_binary() {
    let dir = tmpdir();
    let matrix = dir.join("data.tsv");
    let truth = dir.join("truth.json");
    let found = dir.join("found.json");

    let out = bin()
        .args([
            "generate",
            "--output",
            matrix.to_str().unwrap(),
            "--genes",
            "200",
            "--conds",
            "14",
            "--clusters",
            "2",
            "--gene-frac",
            "0.05",
            "--seed",
            "5",
            "--ground-truth",
            truth.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args([
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--min-genes",
            "5",
            "--min-conds",
            "4",
            "--gamma",
            "0.1",
            "--epsilon",
            "0.01",
            "--stats",
            "--output",
            found.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("mined"), "{text}");
    assert!(text.contains("nodes"), "{text}");

    let out = bin()
        .args([
            "eval",
            "--clusters",
            found.to_str().unwrap(),
            "--ground-truth",
            truth.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let rec: f64 = text
        .lines()
        .find(|l| l.starts_with("recovery"))
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap()
        .parse()
        .unwrap();
    assert!(rec > 0.99, "{text}");
}

#[test]
fn rwave_subcommand_via_binary() {
    let dir = tmpdir();
    let matrix = dir.join("running.tsv");
    regcluster_matrix::io::write_matrix_file(&regcluster_datagen::running_example(), &matrix)
        .unwrap();
    let out = bin()
        .args([
            "rwave",
            "--input",
            matrix.to_str().unwrap(),
            "--gene",
            "g2",
            "--gamma",
            "0.15",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("γ_i = 4.5"), "{text}");
    assert!(text.contains("c10 ↰ c5"), "{text}");
}
