//! Golden-output regression tests for the mining core.
//!
//! The JSON files under `tests/golden/` hold the exact cluster sets produced
//! by the miner before the allocation-free enumeration refactor. Every
//! refactor of the hot path must keep the output bit-identical — sequential
//! and through the engine at thread counts 1–8 under both split strategies.
//!
//! Regenerate (only when the *model* legitimately changes, never to paper
//! over a miner regression) with:
//!
//! ```sh
//! REGCLUSTER_REGEN_GOLDEN=1 cargo test --test golden_output
//! ```

use std::path::PathBuf;

use regcluster_core::{mine, mine_engine, EngineConfig, MiningParams, RegCluster, SplitStrategy};
use regcluster_datagen::{generate, running_example, PatternKind, SyntheticConfig};
use regcluster_matrix::ExpressionMatrix;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// The seeded 100×30 synthetic workload: 6 planted shifting-and-scaling
/// clusters (30% negatively co-regulated members) in a 100-gene matrix.
fn synthetic_100x30() -> ExpressionMatrix {
    let cfg = SyntheticConfig {
        n_genes: 100,
        n_conds: 30,
        n_clusters: 6,
        avg_cluster_dims: 6,
        cluster_gene_frac: 0.06,
        neg_fraction: 0.3,
        plant_gamma: 0.15,
        pattern: PatternKind::ShiftScale,
        value_max: 10.0,
        noise_sigma: 0.0,
        seed: 7,
    };
    generate(&cfg).expect("config is feasible").matrix
}

fn check_against_golden(name: &str, matrix: &ExpressionMatrix, params: &MiningParams) {
    let seq = mine(matrix, params).expect("sequential mining succeeds");
    let path = golden_path(name);
    if std::env::var_os("REGCLUSTER_REGEN_GOLDEN").is_some() {
        let json = serde_json::to_string_pretty(&seq).expect("clusters serialize");
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, json).expect("golden file written");
    }
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); see module docs",
            path.display()
        )
    });
    let golden: Vec<RegCluster> = serde_json::from_str(&raw).expect("golden file parses");
    assert!(
        !golden.is_empty(),
        "golden workload {name} must be non-trivial"
    );
    assert_eq!(seq, golden, "sequential output drifted from golden {name}");
    for threads in 1..=8usize {
        for split in [SplitStrategy::WorkStealing, SplitStrategy::StaticRoots] {
            let config = EngineConfig::new(threads).with_split(split);
            let report = mine_engine(matrix, params, &config).expect("engine succeeds");
            assert!(!report.truncated);
            assert_eq!(
                report.clusters, golden,
                "engine output drifted from golden {name} (threads = {threads}, {split:?})"
            );
        }
    }
}

#[test]
fn running_example_matches_golden_at_every_thread_count() {
    let m = running_example();
    let params = MiningParams::new(3, 5, 0.15, 0.1).expect("valid");
    check_against_golden("running_example.json", &m, &params);
}

#[test]
fn synthetic_100x30_matches_golden_at_every_thread_count() {
    let m = synthetic_100x30();
    let params = MiningParams::new(4, 4, 0.1, 0.05).expect("valid");
    check_against_golden("synthetic_100x30.json", &m, &params);
}
