//! The [`Strategy`] trait, combinators, and the collection / sample
//! constructors exposed through `prop::`.

use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from every generated value and draws from
    /// it.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;

    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces clones of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Chooses uniformly among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.0.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Numeric ranges are strategies drawing uniformly from the range.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64, f64);

/// Regex-subset string literals are strategies producing matching strings.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $i:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
);

/// A length specification for collection strategies: an exact `usize` or a
/// range of lengths.
pub trait SizeRange {
    /// Draws a length.
    fn draw_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn draw_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn draw_len(&self, rng: &mut TestRng) -> usize {
        rng.0.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn draw_len(&self, rng: &mut TestRng) -> usize {
        rng.0.gen_range(self.clone())
    }
}

/// See [`vec()`].
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.draw_len(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` of values from `element`, with length drawn from `len`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for BTreeSetStrategy<S, L>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.len.draw_len(rng);
        let mut out = BTreeSet::new();
        // The element domain may be smaller than the target; give up after
        // a bounded number of duplicate draws rather than spinning.
        let mut attempts = 0usize;
        while out.len() < target && attempts < target.saturating_mul(20) + 20 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// A `BTreeSet` of values from `element`, aiming for a size drawn from
/// `len` (smaller when the element domain is exhausted).
pub fn btree_set<S: Strategy, L: SizeRange>(element: S, len: L) -> BTreeSetStrategy<S, L>
where
    S::Value: Ord,
{
    BTreeSetStrategy { element, len }
}

/// See [`select`].
pub struct Select<T> {
    choices: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.0.gen_range(0..self.choices.len());
        self.choices[i].clone()
    }
}

/// Chooses uniformly from a non-empty list of values.
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select needs at least one choice");
    Select { choices }
}
