//! The engine-uniformity acceptance matrix: every registered engine runs
//! through `mine --engine <name>`, streams into a sealed `.rcs` store with
//! engine-named provenance, answers `query`, exports per-engine metrics,
//! and honors deadline cancellation — all through the compiled binary.

use std::path::PathBuf;
use std::process::Command;

use regcluster_store::ClusterStore;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_regcluster"))
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regcluster-engines-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small all-positive matrix (so the log-space and ratio engines accept
/// it) with an exact 3-gene shifting family plus one unrelated row.
fn write_fixture(path: &PathBuf) {
    let base = [1.0f64, 4.0, 2.0, 8.0, 5.0, 3.0];
    let mut text = String::from("GENE\tc0\tc1\tc2\tc3\tc4\tc5\n");
    for (g, shift) in [0.0, 3.0, 1.0].iter().enumerate() {
        text.push_str(&format!("g{g}"));
        for v in base {
            text.push_str(&format!("\t{}", v + shift));
        }
        text.push('\n');
    }
    text.push_str("g3\t9\t1\t7\t2\t8\t1\n");
    std::fs::write(path, text).unwrap();
}

#[test]
fn every_engine_mines_to_a_queryable_store_with_provenance() {
    let dir = tmpdir();
    let matrix = dir.join("matrix.tsv");
    write_fixture(&matrix);

    for name in regcluster_engines::ENGINE_NAMES {
        let store = dir.join(format!("{name}.rcs"));
        let found = dir.join(format!("{name}.json"));
        let metrics = dir.join(format!("{name}-metrics.json"));
        let out = bin()
            .args([
                "mine",
                "--input",
                matrix.to_str().unwrap(),
                "--engine",
                name,
                "--min-genes",
                "2",
                "--min-conds",
                "2",
                "--store",
                store.to_str().unwrap(),
                "--output",
                found.to_str().unwrap(),
                "--metrics-json",
                metrics.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{name}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains("store written to"), "{name}: {stdout}");

        // The sealed store opens, names its producing engine, and its
        // contents agree with the JSON output document.
        let cs = ClusterStore::open(&store).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(cs.engine(), Some(name), "store provenance engine");
        let stored: Vec<regcluster_core::RegCluster> = cs.iter().collect::<Result<_, _>>().unwrap();
        let doc = std::fs::read_to_string(&found).unwrap();
        let parsed = serde_json::parse_value_str(&doc).unwrap();
        let doc_engine = match &parsed {
            serde_json::Value::Object(map) => map.iter().find(|(k, _)| k == "engine").cloned(),
            other => panic!("{name}: output is not an object: {other:?}"),
        };
        assert_eq!(
            doc_engine.map(|(_, v)| v),
            Some(serde_json::Value::Str(name.to_string())),
            "{name}: output document names its engine"
        );
        assert!(
            doc.matches("\"chain\"").count() == stored.len(),
            "{name}: store and JSON output hold the same clusters"
        );
        // Non-default engines record their native params as provenance too.
        if name != "reg-cluster" {
            let ep = cs
                .engine_params_json()
                .unwrap_or_else(|| panic!("{name}: engine params missing"));
            serde_json::parse_value_str(ep)
                .unwrap_or_else(|e| panic!("{name}: engine params not JSON: {e}"));
        }

        // The store answers the offline query subcommand.
        let out = bin()
            .args(["query", "--store", store.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success(), "{name}: query failed");
        let qtext = String::from_utf8(out.stdout).unwrap();
        assert!(
            qtext.contains(&format!("{} clusters match", stored.len())),
            "{name}: {qtext}"
        );

        // Per-engine run metrics are exported with the engine label.
        let mtext = std::fs::read_to_string(&metrics).unwrap();
        assert!(
            mtext.contains("regcluster_engine_runs_total"),
            "{name}: {mtext}"
        );
        assert!(mtext.contains(name), "{name} label missing: {mtext}");
    }
}

/// An already-expired deadline stops every baseline engine cooperatively:
/// exit code 0, explicit partial-results note, empty result set. This is
/// the binary-level check that `MineControl` is actually threaded into the
/// baseline iteration loops.
#[test]
fn zero_deadline_interrupts_baseline_engines() {
    let dir = tmpdir();
    let matrix = dir.join("deadline.tsv");
    write_fixture(&matrix);
    for name in ["pcluster", "floc"] {
        let out = bin()
            .args([
                "mine",
                "--input",
                matrix.to_str().unwrap(),
                "--engine",
                name,
                "--min-genes",
                "2",
                "--min-conds",
                "2",
                "--deadline-secs",
                "0",
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{name}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("results are partial"), "{name}: {text}");
        assert!(text.contains("0 biclusters"), "{name}: {text}");
    }
}

/// `eval` scores a `.rcs` store directly, whatever engine wrote it.
#[test]
fn eval_accepts_an_rcs_store() {
    let dir = tmpdir();
    let matrix = dir.join("eval.tsv");
    let store = dir.join("eval.rcs");
    let truth = dir.join("eval-truth.json");
    write_fixture(&matrix);
    let out = bin()
        .args([
            "mine",
            "--input",
            matrix.to_str().unwrap(),
            "--engine",
            "pcluster",
            "--min-genes",
            "2",
            "--min-conds",
            "2",
            "--store",
            store.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    // A ground truth in the planted-cluster schema: the 3-gene family on
    // all six conditions (chain = conditions by ascending base value).
    std::fs::write(
        &truth,
        r#"[{"genes": [0, 1, 2], "chain": [0, 2, 5, 1, 4, 3], "negated": [false, false, false]}]"#,
    )
    .unwrap();
    let out = bin()
        .args([
            "eval",
            "--clusters",
            store.to_str().unwrap(),
            "--ground-truth",
            truth.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("recovery"), "{text}");
}
