//! Full reproduction of the paper's running example: every concrete number
//! and structure in Figures 2, 3, 4 and 6 and the accompanying prose.

use regcluster::core::coherence::h_series;
use regcluster::core::miner::Miner;
use regcluster::core::observer::{PruneRule, TraceObserver};
use regcluster::core::{mine, mine_parallel, mine_with_observer, MiningParams};
use regcluster::datagen::running_example;

// 0-based ids: gene g_k is k−1, condition c_k is k−1.
const C1: usize = 0;
const C2: usize = 1;
const C3: usize = 2;
const C4: usize = 3;
const C5: usize = 4;
const C6: usize = 5;
const C7: usize = 6;
const C8: usize = 7;
const C9: usize = 8;
const C10: usize = 9;

fn params() -> MiningParams {
    MiningParams::new(3, 5, 0.15, 0.1).expect("paper parameters are valid")
}

#[test]
fn figure_3_rwave_models() {
    let m = running_example();
    let p = params();
    let miner = Miner::new(&m, &p).unwrap();
    let models = miner.models();

    // γ_1 = γ_2 = 4.5 and γ_3 = 1.8 (§3.1).
    assert!((models[0].gamma() - 4.5).abs() < 1e-12);
    assert!((models[1].gamma() - 4.5).abs() < 1e-12);
    assert!((models[2].gamma() - 1.8).abs() < 1e-12);

    // "c5 − c1 is one bordering condition-pair for g1": any condition left
    // of c5 differs from any condition right of c1 by more than γ_1.
    let g1 = &models[0];
    let (r_c5, r_c1) = (g1.rank_of(C5), g1.rank_of(C1));
    assert!(g1.is_up_regulated(r_c5 + 1, r_c1)); // c8 (tied with c5) ↰ c1
                                                 // Every pair straddling the bordering pair is regulated.
    for lo in 0..=g1.rank_of(C8) {
        for hi in g1.rank_of(C1)..10 {
            assert!(g1.is_up_regulated(lo, hi), "ranks {lo} ↰ {hi}");
        }
    }

    // "the regulation predecessors of c6 for g1 are exactly c7, c2, c10,
    // c9, c8 and c5; there are no regulation successors of c6".
    let r_c6 = g1.rank_of(C6);
    let p_end = g1.predecessor_end(r_c6).expect("c6 has predecessors");
    let mut preds: Vec<usize> = (0..=p_end).map(|r| g1.cond_at(r)).collect();
    preds.sort_unstable();
    assert_eq!(preds, vec![C2, C5, C7, C8, C9, C10]);
    assert_eq!(g1.successor_start(r_c6), None);
}

#[test]
fn figure_2_coherence_scores() {
    // All three genes share H-series [1.0, 0.5, 1.0, 0.5] on the chain
    // c7 ↰ c9 ↰ c5 ↰ c1 ↰ c3 (the paper lists the scores 1.0, 0.5, 1.0, 0.5).
    let m = running_example();
    let chain = [C7, C9, C5, C1, C3];
    for g in 0..3 {
        let h = h_series(m.row(g), &chain);
        let expected = [1.0, 0.5, 1.0, 0.5];
        for (a, e) in h.iter().zip(expected.iter()) {
            assert!((a - e).abs() < 1e-12, "gene {g}: {h:?}");
        }
    }
}

#[test]
fn figure_4_outlier_detection() {
    // On the projection c2, c10, c8: H(1) = H(3) = 0.5263, H(2) = 4.6 —
    // far beyond ε = 0.1 — and the RWave model of g2 shows no regulation
    // between c4 and c8.
    let m = running_example();
    let chain = [C2, C10, C8];
    let h1 = h_series(m.row(0), &chain)[1];
    let h2 = h_series(m.row(1), &chain)[1];
    let h3 = h_series(m.row(2), &chain)[1];
    assert!((h1 - 0.5263).abs() < 1e-3);
    assert!((h3 - 0.5263).abs() < 1e-3);
    assert!((h2 - 4.6).abs() < 1e-12);

    let p = params();
    let miner = Miner::new(&m, &p).unwrap();
    let g2 = &miner.models()[1];
    let (r_c4, r_c8) = (g2.rank_of(C4), g2.rank_of(C8));
    let (lo, hi) = if r_c4 < r_c8 {
        (r_c4, r_c8)
    } else {
        (r_c8, r_c4)
    };
    assert!(
        !g2.is_up_regulated(lo, hi),
        "no regulation between c4 and c8 for g2"
    );
}

#[test]
fn figure_6_unique_cluster_and_prunings() {
    let m = running_example();
    let mut trace = TraceObserver::default();
    let clusters = mine_with_observer(&m, &params(), &mut trace).unwrap();

    // "the only validated representative regulation chain discovered is
    // c7 ↰ c9 ↰ c5 ↰ c1 ↰ c3".
    assert_eq!(clusters.len(), 1);
    let c = &clusters[0];
    assert_eq!(c.chain, vec![C7, C9, C5, C1, C3]);
    assert_eq!(c.p_members, vec![0, 2]);
    assert_eq!(c.n_members, vec![1]);

    // Level-1 prunings: c3's subtree dies to (3)(a) with one p-member.
    assert!(trace.pruned_by(PruneRule::FewPMembers).contains(&&[C3][..]));
    // c2c1 and c2c9 die to MinG pruning (1).
    let min_g = trace.pruned_by(PruneRule::MinGenes);
    assert!(min_g.contains(&&[C2, C1][..]));
    assert!(min_g.contains(&&[C2, C9][..]));
    // c2c10c5 dies to coherence pruning (4)...
    assert!(trace
        .pruned_by(PruneRule::Coherence)
        .contains(&&[C2, C10, C5][..]));
    // ...and c2c10c8 and c7c10 to MinG pruning (1).
    assert!(min_g.contains(&&[C2, C10, C8][..]));
    assert!(min_g.contains(&&[C7, C10][..]));

    // The paper's explored path c7 → c7c9 → c7c9c5 → c7c9c5c1 → output.
    let nodes = trace.nodes();
    for prefix in [
        &[C7][..],
        &[C7, C9][..],
        &[C7, C9, C5][..],
        &[C7, C9, C5, C1][..],
        &[C7, C9, C5, C1, C3][..],
    ] {
        assert!(
            nodes.contains(&prefix),
            "missing enumeration node {prefix:?}"
        );
    }
}

#[test]
fn result_is_stable_across_drivers() {
    let m = running_example();
    let p = params();
    let seq = mine(&m, &p).unwrap();
    for threads in [1, 2, 8] {
        assert_eq!(seq, mine_parallel(&m, &p, threads).unwrap());
    }
}

#[test]
fn cluster_validates_against_definition() {
    let m = running_example();
    let p = params();
    for c in mine(&m, &p).unwrap() {
        c.validate(&m, &p).unwrap();
    }
}
