//! Exhaustive byte-level damage matrix for the `.rcj` control-plane
//! journal: every single-byte flip and every truncation point of a
//! multi-record journal must recover to a valid prefix of the original
//! record sequence or fail with a typed [`StoreError`] — never panic,
//! and never hand a restarted coordinator a prefix from which a fenced
//! epoch could be re-minted.

use std::path::PathBuf;

use regcluster_store::{Journal, JournalRecord, StoreError, JOURNAL_HEADER_LEN};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "regcluster-journal-matrix-{}-{name}",
        std::process::id()
    ))
}

/// A realistic run: lease 0's first holder goes silent, its epoch 1 is
/// fenced off (expired), the slot is re-granted under epoch 2, and that
/// incarnation stages the shard. Epochs only ever move forward.
fn records() -> Vec<JournalRecord> {
    vec![
        JournalRecord::JobCreated {
            generation: 3,
            matrix_fingerprint: 0xdead_beef_cafe_f00d,
            params_json: r#"{"min_genes":4,"min_conds":4,"gamma":0.1,"epsilon":0.5}"#.into(),
            n_roots: 12,
            n_leases: 6,
        },
        JournalRecord::LeaseGranted {
            lease: 0,
            epoch: 1,
            worker: "w1".into(),
        },
        JournalRecord::LeaseGranted {
            lease: 1,
            epoch: 2,
            worker: "w2".into(),
        },
        JournalRecord::LeaseRenewed { lease: 1, epoch: 2 },
        JournalRecord::LeaseExpired { lease: 0, epoch: 1 },
        JournalRecord::LeaseGranted {
            lease: 0,
            epoch: 3,
            worker: "w2".into(),
        },
        JournalRecord::ShardStaged { lease: 1, epoch: 2 },
        JournalRecord::ShardStaged { lease: 0, epoch: 3 },
        JournalRecord::Published { generation: 3 },
    ]
}

/// Writes the sample journal at `path` and returns its bytes plus the
/// file length after each record — the valid record boundaries.
fn build(path: &PathBuf) -> (Vec<u8>, Vec<u64>) {
    let _ = std::fs::remove_file(path);
    let mut journal = Journal::create(path).unwrap();
    let mut boundaries = Vec::new();
    for rec in records() {
        journal.append(&rec).unwrap();
        boundaries.push(std::fs::metadata(path).unwrap().len());
    }
    drop(journal);
    (std::fs::read(path).unwrap(), boundaries)
}

/// Every epoch mentioned anywhere in `recs`.
fn epochs(recs: &[JournalRecord]) -> Vec<u64> {
    recs.iter()
        .filter_map(|r| match r {
            JournalRecord::LeaseGranted { epoch, .. }
            | JournalRecord::LeaseRenewed { epoch, .. }
            | JournalRecord::LeaseExpired { epoch, .. }
            | JournalRecord::ShardStaged { epoch, .. } => Some(*epoch),
            _ => None,
        })
        .collect()
}

#[test]
fn every_single_byte_flip_recovers_a_prefix_or_errors_typed() {
    let path = tmp("flip.rcj");
    let (bytes, _) = build(&path);
    let original = records();
    for i in 0..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[i] ^= 0xff;
        std::fs::write(&path, &damaged).unwrap();
        match Journal::recover(&path) {
            Ok(rec) => {
                // A flip inside the record stream may only shorten the
                // recovered sequence — never alter or reorder survivors.
                assert!(
                    rec.records == original[..rec.records.len()],
                    "flip at byte {i}: recovered records are not a prefix"
                );
                assert!(
                    i >= JOURNAL_HEADER_LEN,
                    "flip at header byte {i} was silently accepted"
                );
                assert!(
                    rec.records.len() < original.len(),
                    "flip at record byte {i} did not shorten the prefix"
                );
            }
            // A damaged header is a typed refusal, not a panic. (Version
            // damage surfaces as `Version`, anything else as `Format`.)
            Err(StoreError::Format(_)) | Err(StoreError::Version { .. }) => {
                assert!(i < JOURNAL_HEADER_LEN, "typed error for record byte {i}");
            }
            Err(other) => panic!("flip at byte {i}: unexpected error {other}"),
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn every_truncation_point_recovers_the_complete_prefix() {
    let path = tmp("cut.rcj");
    let (bytes, boundaries) = build(&path);
    let original = records();
    for cut in 0..=bytes.len() as u64 {
        std::fs::write(&path, &bytes[..cut as usize]).unwrap();
        if cut < JOURNAL_HEADER_LEN as u64 {
            assert!(
                matches!(Journal::recover(&path), Err(StoreError::Format(_))),
                "cut at {cut}: a partial header must be a typed refusal"
            );
            continue;
        }
        let rec = Journal::recover(&path)
            .unwrap_or_else(|e| panic!("cut at {cut}: recovery failed: {e}"));
        // Exactly the records whose frames fit below the cut survive.
        let want = boundaries.iter().filter(|&&b| b <= cut).count();
        assert_eq!(rec.records.len(), want, "cut at {cut}");
        assert_eq!(rec.records, original[..want], "cut at {cut}");
        // The torn tail is gone: the file is truncated back to the last
        // valid boundary and accepts appends again.
        let boundary = boundaries[..want]
            .last()
            .copied()
            .unwrap_or(JOURNAL_HEADER_LEN as u64);
        assert_eq!(rec.truncated_bytes, cut - boundary, "cut at {cut}");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), boundary);
        let mut journal = rec.journal;
        journal
            .append(&JournalRecord::Published { generation: 99 })
            .unwrap();
        drop(journal);
        let again = Journal::recover(&path).unwrap();
        assert_eq!(again.truncated_bytes, 0);
        assert_eq!(
            again.records.last(),
            Some(&JournalRecord::Published { generation: 99 })
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn no_recovered_prefix_can_resurrect_a_fenced_epoch() {
    let path = tmp("fence.rcj");
    let (bytes, _) = build(&path);
    let mut last_max = 0;
    for cut in JOURNAL_HEADER_LEN as u64..=bytes.len() as u64 {
        std::fs::write(&path, &bytes[..cut as usize]).unwrap();
        let rec = Journal::recover(&path).unwrap();
        let seen = epochs(&rec.records);
        let max = seen.iter().copied().max().unwrap_or(0);
        // Longer surviving prefixes never lower the epoch horizon, so a
        // restarted coordinator resuming at `max + 1` mints an epoch
        // strictly above every grant — and every fence — it replayed.
        assert!(
            max >= last_max,
            "cut at {cut}: epoch horizon went backwards"
        );
        last_max = max;
        let next = max + 1;
        assert!(
            seen.iter().all(|&e| e < next),
            "cut at {cut}: epoch {next} would collide with a replayed one"
        );
    }
    std::fs::remove_file(&path).unwrap();
}
