//! Cluster control-plane instruments, exported on the coordinator's
//! `/metrics` endpoint and catalogued in `docs/OBSERVABILITY.md` (the
//! docs-drift test registers this set and sweeps the doc).

use regcluster_obs::{Counter, MetricsRegistry};

/// Lease grants handed to workers.
pub const LEASES_GRANTED_METRIC: &str = "regcluster_cluster_leases_granted_total";
/// Successful heartbeat renewals.
pub const LEASE_RENEWALS_METRIC: &str = "regcluster_cluster_lease_renewals_total";
/// Leases expired for worker silence and returned to the pool.
pub const LEASES_EXPIRED_METRIC: &str = "regcluster_cluster_leases_expired_total";
/// Shards accepted (validated + durably staged).
pub const SHARDS_UPLOADED_METRIC: &str = "regcluster_cluster_shards_uploaded_total";
/// Shards refused (stale epoch, failed validation, torn upload).
pub const SHARDS_REJECTED_METRIC: &str = "regcluster_cluster_shards_rejected_total";
/// Completed shard merges (one per published generation).
pub const MERGES_METRIC: &str = "regcluster_cluster_merges_total";

/// The coordinator's instrument set.
#[derive(Clone)]
pub struct ClusterMetrics {
    /// See [`LEASES_GRANTED_METRIC`].
    pub leases_granted: Counter,
    /// See [`LEASE_RENEWALS_METRIC`].
    pub lease_renewals: Counter,
    /// See [`LEASES_EXPIRED_METRIC`].
    pub leases_expired: Counter,
    /// See [`SHARDS_UPLOADED_METRIC`].
    pub shards_uploaded: Counter,
    /// See [`SHARDS_REJECTED_METRIC`].
    pub shards_rejected: Counter,
    /// See [`MERGES_METRIC`].
    pub merges: Counter,
}

impl ClusterMetrics {
    /// Registers every cluster instrument in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        ClusterMetrics {
            leases_granted: registry.counter(
                LEASES_GRANTED_METRIC,
                "Root leases granted to workers",
                &[],
            ),
            lease_renewals: registry.counter(
                LEASE_RENEWALS_METRIC,
                "Lease heartbeat renewals accepted",
                &[],
            ),
            leases_expired: registry.counter(
                LEASES_EXPIRED_METRIC,
                "Leases expired for worker silence and reassigned",
                &[],
            ),
            shards_uploaded: registry.counter(
                SHARDS_UPLOADED_METRIC,
                "Shard uploads accepted after validation",
                &[],
            ),
            shards_rejected: registry.counter(
                SHARDS_REJECTED_METRIC,
                "Shard uploads refused (stale epoch or failed validation)",
                &[],
            ),
            merges: registry.counter(
                MERGES_METRIC,
                "Completed shard merges into a published generation",
                &[],
            ),
        }
    }
}
