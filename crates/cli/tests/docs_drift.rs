//! Doc-drift guard for the observability catalogue: every metric family
//! the workspace can register, every phase label, and every prune-rule
//! label must be documented in `docs/OBSERVABILITY.md`. Mirrors the
//! USAGE-drift test in `args.rs` — add a metric, grow the doc.

use regcluster_cli::serve::ServeMetrics;
use regcluster_core::observer::PruneRule;
use regcluster_core::MetricsObserver;
use regcluster_obs::{MetricsRegistry, PhaseSpans, PHASES};

fn observability_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/OBSERVABILITY.md");
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("docs/OBSERVABILITY.md must exist: {e}"))
}

#[test]
fn every_registered_metric_is_documented() {
    // Register every instrument the workspace exposes, from all three
    // layers, into one registry — metric_names() is then the ground truth.
    let registry = MetricsRegistry::new();
    let _ = MetricsObserver::register(&registry);
    let _ = PhaseSpans::new(&registry);
    let _ = ServeMetrics::register(&registry);

    let doc = observability_doc();
    let names = registry.metric_names();
    assert!(names.len() >= 9, "expected the full catalogue: {names:?}");
    for name in &names {
        assert!(
            doc.contains(name.as_str()),
            "metric `{name}` is not documented in docs/OBSERVABILITY.md"
        );
    }
}

#[test]
fn every_phase_and_prune_rule_label_is_documented() {
    let doc = observability_doc();
    for phase in PHASES {
        assert!(
            doc.contains(&format!("`{phase}`")),
            "phase label `{phase}` is not documented in docs/OBSERVABILITY.md"
        );
    }
    for rule in PruneRule::ALL {
        let label = rule.as_label();
        assert!(
            doc.contains(&format!("`{label}`")),
            "prune-rule label `{label}` is not documented in docs/OBSERVABILITY.md"
        );
    }
}

#[test]
fn doc_is_linked_from_user_facing_pages() {
    for page in ["README.md", "docs/GUIDE.md"] {
        let path = format!("{}/../../{page}", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("OBSERVABILITY.md"),
            "{page} must link to the observability catalogue"
        );
    }
}
